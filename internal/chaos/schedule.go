// Package chaos is a deterministic chaos-testing harness for the simulated
// ST-TCP testbed: from a single int64 seed it generates a randomized fault
// schedule (machine crashes, silent application crashes, NIC failures,
// serial cuts, loss/latency bursts, double failovers, and gray failures —
// slow-not-dead hosts, asymmetric partitions, byte-corrupting links,
// flapping interfaces, clock-rate skew), injects it into a fresh testbed
// run through a registry of pluggable Injectors, and afterwards checks a
// registry of system-wide invariants against the trace stream and the
// metrics snapshot. Everything is driven by the simulator's seeded
// randomness, so any failure replays exactly from its seed, and a greedy
// shrinker minimises the failing schedule.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/sim"
)

// EventKind identifies one fault (or workload) injection.
type EventKind int

// Event kinds. "Serving" and "Standby" are resolved live at injection time:
// the serving side is whichever node currently transmits to the client
// (primary, or the backup after a takeover), the standby side is the backup
// while both nodes are active. Resolving by role rather than by machine
// keeps double-failover schedules meaningful after a rejoin swaps the
// machines' roles.
const (
	// EvClientStart opens the workload connection (always present at t=0).
	EvClientStart EventKind = iota
	// EvSecondClient opens one more client connection mid-run.
	EvSecondClient

	// EvCrashServing / EvCrashStandby power the machine off abruptly
	// (Table 1 row 1: hardware failure — NIC, OS, and serial all die).
	EvCrashServing
	EvCrashStandby

	// EvAppCrashServing / EvAppCrashStandby crash only the application
	// process (Table 1 row 3). Cleanup selects the §4.2.2 variant in
	// which the OS closes the sockets (FIN); otherwise the crash is
	// silent (§4.2.1, no FIN).
	EvAppCrashServing
	EvAppCrashStandby

	// EvNICFailServing / EvNICFailStandby kill only the Ethernet NIC
	// (Table 1 row 2); heartbeats continue over the serial line and the
	// ping arbitration of §4.3 assigns blame.
	EvNICFailServing
	EvNICFailStandby

	// EvSerialCut unplugs the null-modem cable (Table 1 row 4).
	EvSerialCut

	// EvDrop* silence one ethernet link's inbound direction for Dur
	// (Table 1 row 5: transient fault shorter than the HB timeout).
	EvDropServing
	EvDropStandby
	EvDropClient

	// EvLoss* impose a random loss rate on one link for Dur.
	EvLossServing
	EvLossStandby
	EvLossClient

	// EvDelay* add Delay of one-way latency on one link for Dur.
	EvDelayServing
	EvDelayStandby
	EvDelayClient

	// EvRejoin reboots the dead machine and reintegrates it as the new
	// backup (the repair loop), restoring fault tolerance so a second
	// failover becomes possible.
	EvRejoin

	// Gray failures: faults that degrade rather than kill, invisible to
	// the crisp Table 1 detectors. Each has a detector answer in
	// internal/sttcp (gated by Config.Suspicion.Enabled) and is judged by
	// the gray invariants.

	// EvStarveServing CPU-starves the serving host: application
	// processing is stretched by factor Scale for Dur while the host's
	// timers — and heartbeats — stay on schedule. The slow-not-dead
	// primary; answered by the response-latency suspicion scorer.
	EvStarveServing
	// EvAsymPartition cuts only the serving host's transmit direction on
	// its LAN link for Dur: the host keeps receiving (and so stays
	// oblivious) while its heartbeats and ACKs vanish. Answered by the
	// asymmetric-partition criterion.
	EvAsymPartition
	// EvCorruptServing flips one bit per frame with probability Rate on
	// the serving host's LAN link for Dur. Every flip is caught by an
	// IP/UDP/TCP checksum and dropped, so corruption behaves as
	// detectable loss; the detectors must ride it out without a verdict.
	EvCorruptServing
	// EvCorruptSerial flips bits on the serial heartbeat line at Rate
	// for Dur; the CRC32 frame check rejects them. Evidence (CRC error
	// counters, transient link-silence spans) without a verdict.
	EvCorruptSerial
	// EvNICFlap toggles the serving host's LAN link down and up every
	// Period/2 for Dur — faster than the heartbeat detection period.
	// STONITH-before-takeover must prevent dual-transmitter oscillation.
	EvNICFlap
	// EvSerialFlap toggles the serial line down and up every Period/2
	// for Dur.
	EvSerialFlap
	// EvClockSkew scales the standby host's timer oscillator by Scale
	// (above or below 1) for Dur: heartbeats and detectors run off-rate.
	// Answered by the heartbeat-cadence drift estimator — evidence, not
	// a verdict.
	EvClockSkew
)

// Event is one scheduled injection.
type Event struct {
	// At is the injection time relative to run start.
	At time.Duration
	// Kind selects the fault.
	Kind EventKind
	// Dur is the window length for windowed events (drop/loss/delay and
	// every gray fault); the executor schedules the injector's Revert at
	// At+Dur.
	Dur time.Duration
	// Rate is the loss probability for loss events and the corruption
	// probability for corrupt events.
	Rate float64
	// Delay is the extra one-way latency for delay events.
	Delay time.Duration
	// Cleanup selects the with-OS-cleanup (FIN) application crash.
	Cleanup bool
	// Scale is the CPU-starvation stretch factor (EvStarveServing) or
	// the timer-rate factor (EvClockSkew).
	Scale float64
	// Period is the full down+up cycle length for flap events.
	Period time.Duration
}

// Gray reports whether the event is one of the gray-failure kinds.
func (e Event) Gray() bool { return e.Kind >= EvStarveServing && e.Kind <= EvClockSkew }

// String renders the event compactly, e.g. "@480ms loss-standby rate=0.18 dur=1.2s".
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "@%v %v", e.At, e.Kind)
	if e.Rate != 0 {
		fmt.Fprintf(&b, " rate=%.2f", e.Rate)
	}
	if e.Delay != 0 {
		fmt.Fprintf(&b, " delay=%v", e.Delay)
	}
	if e.Scale != 0 {
		fmt.Fprintf(&b, " scale=%.3g", e.Scale)
	}
	if e.Period != 0 {
		fmt.Fprintf(&b, " period=%v", e.Period)
	}
	if e.Dur != 0 {
		fmt.Fprintf(&b, " dur=%v", e.Dur)
	}
	if e.Cleanup {
		b.WriteString(" cleanup")
	}
	return b.String()
}

// Schedule is a complete chaos run description: the workload plus the fault
// events, all derived from Seed. A Schedule can also be built by hand (the
// ported failover fuzz test does) — the harness does not care where the
// events came from.
type Schedule struct {
	// Seed drives the testbed simulation AND generated this schedule.
	Seed int64
	// Workload is "download" (StreamClient against the data server) or
	// "echo" (EchoClient against the echo server).
	Workload string
	// Bytes is the download size (download workload).
	Bytes int64
	// Rounds and MsgSize parameterise the echo workload.
	Rounds  int
	MsgSize int
	// Horizon bounds the run; the harness may stop earlier once every
	// client finished and the schedule is exhausted.
	Horizon time.Duration
	// Events are sorted by At.
	Events []Event
}

// HasGray reports whether any scheduled event is a gray fault; the
// harness enables the sttcp gray-failure detector suite exactly then, so
// legacy schedules replay bit-identically.
func (sc Schedule) HasGray() bool {
	for _, e := range sc.Events {
		if e.Gray() {
			return true
		}
	}
	return false
}

// DriftObservable reports whether the heartbeat-cadence drift estimator
// on the serving node can be expected to converge in this schedule. It
// cannot when a verdict-class gray fault will STONITH the observer
// mid-run (starve, asymmetric partition), nor when a NIC flap punches
// holes in the very inter-arrival stream the estimator averages — the
// flap may itself escalate to a takeover, and the gapped cadence can
// mask a slow-clock skew.
func (sc Schedule) DriftObservable() bool {
	for _, e := range sc.Events {
		switch e.Kind {
		case EvStarveServing, EvAsymPartition, EvNICFlap:
			return false
		}
	}
	return true
}

// Signature identifies the fault structure of the schedule independent of
// the seed, so a campaign can count how many *distinct* schedules it
// explored.
func (sc Schedule) Signature() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", sc.Workload)
	if sc.Workload == "download" {
		fmt.Fprintf(&b, " %dB", sc.Bytes)
	} else {
		fmt.Fprintf(&b, " %dx%dB", sc.Rounds, sc.MsgSize)
	}
	for _, e := range sc.Events {
		fmt.Fprintf(&b, "; %v", e)
	}
	return b.String()
}

// String renders the schedule for failure reports.
func (sc Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d workload=%s", sc.Seed, sc.Workload)
	if sc.Workload == "download" {
		fmt.Fprintf(&b, " bytes=%d", sc.Bytes)
	} else {
		fmt.Fprintf(&b, " rounds=%d msgsize=%d", sc.Rounds, sc.MsgSize)
	}
	fmt.Fprintf(&b, " horizon=%v\n", sc.Horizon)
	for _, e := range sc.Events {
		fmt.Fprintf(&b, "  %v\n", e)
	}
	return b.String()
}

// WithoutEvent returns a copy of the schedule with event i removed — the
// shrinker's step. EvClientStart at index 0 is kept (removing the workload
// makes every run vacuously pass).
func (sc Schedule) WithoutEvent(i int) Schedule {
	out := sc
	out.Events = make([]Event, 0, len(sc.Events)-1)
	out.Events = append(out.Events, sc.Events[:i]...)
	out.Events = append(out.Events, sc.Events[i+1:]...)
	return out
}

// KindWeight weights one kind in a generator slate. Slates expand in
// slice order, so two specs with identical ordered weights consume the
// generator's randomness identically — the property that keeps
// DefaultSpec byte-compatible with historical seeds.
type KindWeight struct {
	Kind   EventKind
	Weight int
}

// Range bounds a uniform duration draw (inclusive Lo, exclusive Hi).
type Range struct{ Lo, Hi time.Duration }

// FloatRange bounds a uniform float draw.
type FloatRange struct{ Lo, Hi float64 }

// GenSpec parameterises schedule generation: per-kind weights for the
// benign, fatal, and gray slates, and the duration/rate bounds for each
// fault family. DefaultSpec reproduces the historical generator exactly;
// GraySpec trades the fatal slate for the gray one.
type GenSpec struct {
	// Seed drives generation AND the run the schedule is injected into.
	Seed int64
	// Horizon bounds the run (default 60s).
	Horizon time.Duration

	// Benign is the background-noise slate; up to MaxBenign events are
	// drawn from it, placed uniformly in BenignAt. An empty slate (or
	// MaxBenign 0) disables benign noise.
	Benign    []KindWeight
	MaxBenign int
	BenignAt  Range

	// Parameter bounds for the benign families.
	DropDur  Range
	LossRate FloatRange
	LossDur  Range
	Delay    Range
	DelayDur Range

	// Fatal is the crisp-fault slate; an empty slate disables fatal
	// faults entirely. When benign noise was drawn, a fatal fault lands
	// with probability FatalProb (a noise-free schedule always gets
	// one); it is placed in EarlyAt (the connection-establishment
	// window) with probability EarlyProb, else in FatalAt.
	Fatal       []KindWeight
	FatalProb   float64
	EarlyProb   float64
	EarlyAt     Range
	FatalAt     Range
	CleanupProb float64

	// The double-failover chain: a serving-side fatal fault rejoins with
	// probability ChainProb, then starts a second client with
	// SecondClientProb, then kills again with SecondFatalProb.
	ChainProb        float64
	SecondClientProb float64
	SecondFatalProb  float64

	// Gray is the gray-failure slate; an empty slate disables gray
	// faults. A drawn verdict-class kind (starve, asym partition) makes
	// the whole schedule verdict-class: exactly one detection target,
	// with the workload forced long enough to span it. Any other first
	// draw makes a noise-class schedule of up to MaxGray distinct kinds,
	// which the gray-quiescence invariant requires to stay verdict-free.
	Gray    []KindWeight
	MaxGray int
	GrayAt  Range

	// Parameter bounds for the gray families.
	StarveScale      FloatRange
	StarveDur        Range
	AsymDur          Range
	CorruptRate      FloatRange
	CorruptDur       Range
	SerialCorrupt    FloatRange
	SerialCorruptDur Range
	FlapPeriod       Range
	FlapDur          Range
	SkewScale        FloatRange
	SkewDur          Range
	// SkewRideProb is the chance a verdict-class schedule also skews the
	// standby's clock: detection must still meet its deadline with a
	// mildly off-rate observer.
	SkewRideProb float64
}

// DefaultSpec is the historical generator: crisp Table 1 faults plus
// benign noise, no gray events. For any seed, Generate(DefaultSpec(seed))
// produces exactly the schedule the pre-GenSpec Generate(seed) did.
func DefaultSpec(seed int64) GenSpec {
	return GenSpec{
		Seed:    seed,
		Horizon: 60 * time.Second,
		Benign: []KindWeight{
			{EvDropServing, 1}, {EvDropStandby, 1}, {EvDropClient, 1},
			{EvLossServing, 1}, {EvLossStandby, 1}, {EvLossClient, 1},
			{EvDelayServing, 1}, {EvDelayStandby, 1}, {EvDelayClient, 1},
			{EvSerialCut, 1},
		},
		MaxBenign: 3,
		BenignAt:  Range{0, 3 * time.Second},
		// Drops stay shorter than the 600 ms HB timeout: they must never
		// cause a spurious failover on a server link.
		DropDur:  Range{50 * time.Millisecond, 400 * time.Millisecond},
		LossRate: FloatRange{0.05, 0.25},
		LossDur:  Range{200 * time.Millisecond, 2 * time.Second},
		Delay:    Range{time.Millisecond, 20 * time.Millisecond},
		DelayDur: Range{100 * time.Millisecond, 2 * time.Second},
		Fatal: []KindWeight{
			{EvCrashServing, 3}, {EvCrashStandby, 2},
			{EvAppCrashServing, 2}, {EvAppCrashStandby, 1},
			{EvNICFailServing, 1}, {EvNICFailStandby, 1},
		},
		FatalProb:        0.75,
		EarlyProb:        0.30,
		EarlyAt:          Range{0, 300 * time.Millisecond},
		FatalAt:          Range{0, 1200 * time.Millisecond},
		CleanupProb:      0.33,
		ChainProb:        0.5,
		SecondClientProb: 0.6,
		SecondFatalProb:  0.6,
	}
}

// GraySpec generates gray-failure schedules: the fatal slate is dropped,
// background noise is restricted to the client link (server-link noise
// would blur the quiescence judgement of the detectors under test), and
// one of the five gray fault classes is drawn.
func GraySpec(seed int64) GenSpec {
	sp := DefaultSpec(seed)
	sp.Benign = []KindWeight{
		{EvDropClient, 1}, {EvLossClient, 1}, {EvDelayClient, 1},
	}
	sp.MaxBenign = 2
	sp.Fatal = nil
	sp.Gray = []KindWeight{
		{EvStarveServing, 3}, {EvAsymPartition, 2},
		{EvCorruptServing, 2}, {EvCorruptSerial, 2},
		{EvNICFlap, 2}, {EvSerialFlap, 1}, {EvClockSkew, 2},
	}
	sp.MaxGray = 3
	sp.GrayAt = Range{800 * time.Millisecond, 2 * time.Second}
	// Starvation stretch: staleness observed by the scorer is roughly
	// (Scale-1)ms per processing quantum plus heartbeat staleness, so
	// the floor sits comfortably above the 400 ms response SLO.
	sp.StarveScale = FloatRange{450, 800}
	sp.StarveDur = Range{6 * time.Second, 10 * time.Second}
	// Long enough for grace (1s) + hold (1s) + ping turnaround, short
	// enough that the link is restored within the horizon.
	sp.AsymDur = Range{5 * time.Second, 8 * time.Second}
	// LAN corruption bounded so the resulting retransmission stalls keep
	// the suspicion bucket below threshold.
	sp.CorruptRate = FloatRange{0.05, 0.10}
	sp.CorruptDur = Range{800 * time.Millisecond, 1500 * time.Millisecond}
	// Serial heartbeats flow at only 5/s, so the rate and window are
	// sized for the CRC-error fingerprint to be near-certain (≥ 25
	// frames cross both ports in the shortest window; at the floor rate
	// the no-reject probability is under 0.02%).
	sp.SerialCorrupt = FloatRange{0.30, 0.45}
	sp.SerialCorruptDur = Range{2500 * time.Millisecond, 4 * time.Second}
	// Flap cycles well under the 600 ms HB timeout.
	sp.FlapPeriod = Range{100 * time.Millisecond, 250 * time.Millisecond}
	sp.FlapDur = Range{1500 * time.Millisecond, 3 * time.Second}
	// Skew magnitude past the 8% drift-note threshold, long enough for
	// the EWMA to converge.
	sp.SkewScale = FloatRange{1.10, 1.15}
	sp.SkewDur = Range{6 * time.Second, 9 * time.Second}
	sp.SkewRideProb = 0.35
	return sp
}

func dur(rng *rand.Rand, lo, hi time.Duration) time.Duration {
	return lo + time.Duration(rng.Int63n(int64(hi-lo)))
}

func rdur(rng *rand.Rand, r Range) time.Duration { return dur(rng, r.Lo, r.Hi) }

func rfloat(rng *rand.Rand, r FloatRange) float64 {
	return r.Lo + (r.Hi-r.Lo)*rng.Float64()
}

// expandKinds unrolls a weighted slate into a draw slice, in slice order.
func expandKinds(ws []KindWeight) []EventKind {
	var out []EventKind
	for _, w := range ws {
		for i := 0; i < w.Weight; i++ {
			out = append(out, w.Kind)
		}
	}
	return out
}

// hasKind reports whether the slate mentions k with positive weight.
func hasKind(ws []KindWeight, k EventKind) bool {
	for _, w := range ws {
		if w.Kind == k && w.Weight > 0 {
			return true
		}
	}
	return false
}

// Generate derives a randomized schedule from the spec. The generator
// biases toward interesting structure: every schedule starts a client at
// t=0 and injects at least one fault; fatal faults land early (EarlyProb
// inside the connection-establishment window) so handshake races are
// exercised; a fatal fault on the serving side may chain into a rejoin, a
// second client, and a second fatal fault — the double-failover path.
func Generate(spec GenSpec) Schedule {
	return GenerateWith(sim.NewRand(spec.Seed), spec)
}

// GenerateWith is Generate drawing from an injected source — the audit
// point for schedule randomness. The campaign driver passes sim.NewRand
// (spec.Seed), so the schedule and the testbed run it is injected into
// derive from the same single seed; tests may pass any deterministic
// source.
func GenerateWith(rng *rand.Rand, spec GenSpec) Schedule {
	sc := Schedule{Seed: spec.Seed, Horizon: spec.Horizon}
	if sc.Horizon == 0 {
		sc.Horizon = 60 * time.Second
	}

	if rng.Intn(2) == 0 {
		sc.Workload = "download"
		sc.Bytes = int64(1+rng.Intn(4)) << 20
	} else {
		sc.Workload = "echo"
		sc.Rounds = 150 + rng.Intn(250)
		sc.MsgSize = 256 + rng.Intn(1280)
	}
	sc.Events = append(sc.Events, Event{At: 0, Kind: EvClientStart})

	// Benign background noise.
	benign := expandKinds(spec.Benign)
	nBenign := 0
	if len(benign) > 0 && spec.MaxBenign > 0 {
		nBenign = rng.Intn(spec.MaxBenign + 1)
	}
	for i := 0; i < nBenign; i++ {
		ev := Event{At: rdur(rng, spec.BenignAt), Kind: benign[rng.Intn(len(benign))]}
		switch ev.Kind {
		case EvDropServing, EvDropStandby, EvDropClient:
			ev.Dur = rdur(rng, spec.DropDur)
		case EvLossServing, EvLossStandby, EvLossClient:
			ev.Rate = rfloat(rng, spec.LossRate)
			ev.Dur = rdur(rng, spec.LossDur)
		case EvDelayServing, EvDelayStandby, EvDelayClient:
			ev.Delay = rdur(rng, spec.Delay)
			ev.Dur = rdur(rng, spec.DelayDur)
		}
		sc.Events = append(sc.Events, ev)
	}

	// The fatal fault, biased toward the handshake window.
	fatal := expandKinds(spec.Fatal)
	haveFatal := len(fatal) > 0 && (nBenign == 0 || rng.Float64() < spec.FatalProb)
	if haveFatal {
		ev := Event{Kind: fatal[rng.Intn(len(fatal))]}
		if rng.Float64() < spec.EarlyProb {
			ev.At = rdur(rng, spec.EarlyAt)
		} else {
			ev.At = rdur(rng, spec.FatalAt)
		}
		if ev.Kind == EvAppCrashServing || ev.Kind == EvAppCrashStandby {
			ev.Cleanup = rng.Float64() < spec.CleanupProb
		}
		sc.Events = append(sc.Events, ev)

		// A serving-side fatal fault can chain into the repair loop and
		// a second failover generation.
		servingFatal := ev.Kind == EvCrashServing ||
			(ev.Kind == EvAppCrashServing && !ev.Cleanup) ||
			ev.Kind == EvNICFailServing
		if servingFatal && rng.Float64() < spec.ChainProb {
			rejoinAt := ev.At + 4*time.Second + dur(rng, 0, 2*time.Second)
			sc.Events = append(sc.Events, Event{At: rejoinAt, Kind: EvRejoin})
			if rng.Float64() < spec.SecondClientProb {
				clientAt := rejoinAt + dur(rng, 0, time.Second)
				sc.Events = append(sc.Events, Event{At: clientAt, Kind: EvSecondClient})
				if rng.Float64() < spec.SecondFatalProb {
					second := EvCrashServing
					if rng.Intn(2) == 0 {
						second = EvCrashStandby
					}
					sc.Events = append(sc.Events, Event{
						At:   clientAt + dur(rng, 200*time.Millisecond, 1500*time.Millisecond),
						Kind: second,
					})
				}
			}
		}
	}

	if len(spec.Gray) > 0 {
		generateGray(rng, spec, &sc)
	}

	sort.SliceStable(sc.Events, func(i, j int) bool { return sc.Events[i].At < sc.Events[j].At })
	return sc
}

// generateGray appends the gray block. The first draw decides the
// schedule's class: a verdict kind (starve, asym partition) yields
// exactly one detection target; anything else yields a noise-class mix
// that the detectors must ride out without a verdict.
func generateGray(rng *rand.Rand, spec GenSpec, sc *Schedule) {
	// Every gray schedule runs a long echo workload: the suspicion
	// scorer needs response traffic in flight from fault to verdict, and
	// noise-class windows must overlap dense two-way traffic or their
	// fingerprint (checksum rejects on a near-idle link) is left to
	// chance. ~4 ms/round keeps the stream flowing past the last window.
	sc.Workload = "echo"
	sc.Bytes = 0
	sc.Rounds = 900 + rng.Intn(300)
	sc.MsgSize = 256 + rng.Intn(768)
	slate := expandKinds(spec.Gray)
	first := slate[rng.Intn(len(slate))]
	if first == EvStarveServing || first == EvAsymPartition {
		sc.Events = append(sc.Events, grayEvent(rng, spec, first))
		if spec.SkewRideProb > 0 && hasKind(spec.Gray, EvClockSkew) &&
			rng.Float64() < spec.SkewRideProb {
			sc.Events = append(sc.Events, grayEvent(rng, spec, EvClockSkew))
		}
		return
	}
	n := 1
	if spec.MaxGray > 1 {
		n = 1 + rng.Intn(spec.MaxGray)
	}
	seen := make(map[EventKind]bool)
	add := func(k EventKind) {
		if seen[k] || k == EvStarveServing || k == EvAsymPartition {
			return // dedup; verdict kinds never join a noise schedule
		}
		seen[k] = true
		sc.Events = append(sc.Events, grayEvent(rng, spec, k))
	}
	add(first)
	for i := 1; i < n; i++ {
		add(slate[rng.Intn(len(slate))])
	}
}

// grayEvent draws one gray event's placement and parameters.
func grayEvent(rng *rand.Rand, spec GenSpec, k EventKind) Event {
	ev := Event{At: rdur(rng, spec.GrayAt), Kind: k}
	switch k {
	case EvStarveServing:
		ev.Scale = rfloat(rng, spec.StarveScale)
		ev.Dur = rdur(rng, spec.StarveDur)
	case EvAsymPartition:
		ev.Dur = rdur(rng, spec.AsymDur)
	case EvCorruptServing:
		ev.Rate = rfloat(rng, spec.CorruptRate)
		ev.Dur = rdur(rng, spec.CorruptDur)
	case EvCorruptSerial:
		ev.Rate = rfloat(rng, spec.SerialCorrupt)
		ev.Dur = rdur(rng, spec.SerialCorruptDur)
	case EvNICFlap, EvSerialFlap:
		ev.Period = rdur(rng, spec.FlapPeriod)
		ev.Dur = rdur(rng, spec.FlapDur)
	case EvClockSkew:
		ev.Scale = rfloat(rng, spec.SkewScale)
		if rng.Intn(2) == 0 {
			ev.Scale = 1 / ev.Scale // fast clock instead of slow
		}
		ev.Dur = rdur(rng, spec.SkewDur)
	}
	return ev
}
