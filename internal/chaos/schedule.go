// Package chaos is a deterministic chaos-testing harness for the simulated
// ST-TCP testbed: from a single int64 seed it generates a randomized fault
// schedule (machine crashes, silent application crashes, NIC failures,
// serial cuts, loss/latency bursts, double failovers), injects it into a
// fresh testbed run through the sim clock, the netem fault hooks, and the
// cluster API, and afterwards checks a registry of system-wide invariants
// against the trace stream and the metrics snapshot. Everything is driven
// by the simulator's seeded randomness, so any failure replays exactly from
// its seed, and a greedy shrinker minimises the failing schedule.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/sim"
)

// EventKind identifies one fault (or workload) injection.
type EventKind int

// Event kinds. "Serving" and "Standby" are resolved live at injection time:
// the serving side is whichever node currently transmits to the client
// (primary, or the backup after a takeover), the standby side is the backup
// while both nodes are active. Resolving by role rather than by machine
// keeps double-failover schedules meaningful after a rejoin swaps the
// machines' roles.
const (
	// EvClientStart opens the workload connection (always present at t=0).
	EvClientStart EventKind = iota
	// EvSecondClient opens one more client connection mid-run.
	EvSecondClient

	// EvCrashServing / EvCrashStandby power the machine off abruptly
	// (Table 1 row 1: hardware failure — NIC, OS, and serial all die).
	EvCrashServing
	EvCrashStandby

	// EvAppCrashServing / EvAppCrashStandby crash only the application
	// process (Table 1 row 3). Cleanup selects the §4.2.2 variant in
	// which the OS closes the sockets (FIN); otherwise the crash is
	// silent (§4.2.1, no FIN).
	EvAppCrashServing
	EvAppCrashStandby

	// EvNICFailServing / EvNICFailStandby kill only the Ethernet NIC
	// (Table 1 row 2); heartbeats continue over the serial line and the
	// ping arbitration of §4.3 assigns blame.
	EvNICFailServing
	EvNICFailStandby

	// EvSerialCut unplugs the null-modem cable (Table 1 row 4).
	EvSerialCut

	// EvDrop* silence one ethernet link's inbound direction for Dur
	// (Table 1 row 5: transient fault shorter than the HB timeout).
	EvDropServing
	EvDropStandby
	EvDropClient

	// EvLoss* impose a random loss rate on one link for Dur.
	EvLossServing
	EvLossStandby
	EvLossClient

	// EvDelay* add Delay of one-way latency on one link for Dur.
	EvDelayServing
	EvDelayStandby
	EvDelayClient

	// EvRejoin reboots the dead machine and reintegrates it as the new
	// backup (the repair loop), restoring fault tolerance so a second
	// failover becomes possible.
	EvRejoin
)

var eventKindNames = map[EventKind]string{
	EvClientStart:     "client-start",
	EvSecondClient:    "second-client",
	EvCrashServing:    "crash-serving",
	EvCrashStandby:    "crash-standby",
	EvAppCrashServing: "appcrash-serving",
	EvAppCrashStandby: "appcrash-standby",
	EvNICFailServing:  "nicfail-serving",
	EvNICFailStandby:  "nicfail-standby",
	EvSerialCut:       "serial-cut",
	EvDropServing:     "drop-serving",
	EvDropStandby:     "drop-standby",
	EvDropClient:      "drop-client",
	EvLossServing:     "loss-serving",
	EvLossStandby:     "loss-standby",
	EvLossClient:      "loss-client",
	EvDelayServing:    "delay-serving",
	EvDelayStandby:    "delay-standby",
	EvDelayClient:     "delay-client",
	EvRejoin:          "rejoin",
}

// String names the kind.
func (k EventKind) String() string {
	if n, ok := eventKindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// ParseEventKind resolves a kind's command-line spelling (the String
// form, e.g. "crash-serving"). The scan walks the consecutive kind
// constants rather than ranging the name map, so candidate order — and
// any error a caller renders from it — never depends on map iteration.
func ParseEventKind(s string) (EventKind, error) {
	for k := EvClientStart; k <= EvRejoin; k++ {
		if eventKindNames[k] == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("chaos: unknown event kind %q", s)
}

// Event is one scheduled injection.
type Event struct {
	// At is the injection time relative to run start.
	At time.Duration
	// Kind selects the fault.
	Kind EventKind
	// Dur is the window length for drop/loss/delay events.
	Dur time.Duration
	// Rate is the loss probability for loss events.
	Rate float64
	// Delay is the extra one-way latency for delay events.
	Delay time.Duration
	// Cleanup selects the with-OS-cleanup (FIN) application crash.
	Cleanup bool
}

// String renders the event compactly, e.g. "@480ms loss-standby rate=0.18 dur=1.2s".
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "@%v %v", e.At, e.Kind)
	if e.Rate != 0 {
		fmt.Fprintf(&b, " rate=%.2f", e.Rate)
	}
	if e.Delay != 0 {
		fmt.Fprintf(&b, " delay=%v", e.Delay)
	}
	if e.Dur != 0 {
		fmt.Fprintf(&b, " dur=%v", e.Dur)
	}
	if e.Cleanup {
		b.WriteString(" cleanup")
	}
	return b.String()
}

// Schedule is a complete chaos run description: the workload plus the fault
// events, all derived from Seed. A Schedule can also be built by hand (the
// ported failover fuzz test does) — the harness does not care where the
// events came from.
type Schedule struct {
	// Seed drives the testbed simulation AND generated this schedule.
	Seed int64
	// Workload is "download" (StreamClient against the data server) or
	// "echo" (EchoClient against the echo server).
	Workload string
	// Bytes is the download size (download workload).
	Bytes int64
	// Rounds and MsgSize parameterise the echo workload.
	Rounds  int
	MsgSize int
	// Horizon bounds the run; the harness may stop earlier once every
	// client finished and the schedule is exhausted.
	Horizon time.Duration
	// Events are sorted by At.
	Events []Event
}

// Signature identifies the fault structure of the schedule independent of
// the seed, so a campaign can count how many *distinct* schedules it
// explored.
func (sc Schedule) Signature() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", sc.Workload)
	if sc.Workload == "download" {
		fmt.Fprintf(&b, " %dB", sc.Bytes)
	} else {
		fmt.Fprintf(&b, " %dx%dB", sc.Rounds, sc.MsgSize)
	}
	for _, e := range sc.Events {
		fmt.Fprintf(&b, "; %v", e)
	}
	return b.String()
}

// String renders the schedule for failure reports.
func (sc Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d workload=%s", sc.Seed, sc.Workload)
	if sc.Workload == "download" {
		fmt.Fprintf(&b, " bytes=%d", sc.Bytes)
	} else {
		fmt.Fprintf(&b, " rounds=%d msgsize=%d", sc.Rounds, sc.MsgSize)
	}
	fmt.Fprintf(&b, " horizon=%v\n", sc.Horizon)
	for _, e := range sc.Events {
		fmt.Fprintf(&b, "  %v\n", e)
	}
	return b.String()
}

// WithoutEvent returns a copy of the schedule with event i removed — the
// shrinker's step. EvClientStart at index 0 is kept (removing the workload
// makes every run vacuously pass).
func (sc Schedule) WithoutEvent(i int) Schedule {
	out := sc
	out.Events = make([]Event, 0, len(sc.Events)-1)
	out.Events = append(out.Events, sc.Events[:i]...)
	out.Events = append(out.Events, sc.Events[i+1:]...)
	return out
}

func dur(rng *rand.Rand, lo, hi time.Duration) time.Duration {
	return lo + time.Duration(rng.Int63n(int64(hi-lo)))
}

// Generate derives a randomized schedule from seed. The generator biases
// toward interesting structure: every schedule starts a client at t=0 and
// injects at least one fault; fatal faults land early (30% inside the first
// 300 ms, the connection-establishment window) so handshake races are
// exercised; a fatal fault on the serving side may chain into a rejoin, a
// second client, and a second fatal fault — the double-failover path.
func Generate(seed int64) Schedule {
	return GenerateWith(sim.NewRand(seed), seed)
}

// GenerateWith is Generate drawing from an injected source — the audit
// point for schedule randomness. The campaign driver passes sim.NewRand
// (seed), so the schedule and the testbed run it is injected into derive
// from the same single seed; tests may pass any deterministic source.
func GenerateWith(rng *rand.Rand, seed int64) Schedule {
	sc := Schedule{Seed: seed, Horizon: 60 * time.Second}

	if rng.Intn(2) == 0 {
		sc.Workload = "download"
		sc.Bytes = int64(1+rng.Intn(4)) << 20
	} else {
		sc.Workload = "echo"
		sc.Rounds = 150 + rng.Intn(250)
		sc.MsgSize = 256 + rng.Intn(1280)
	}
	sc.Events = append(sc.Events, Event{At: 0, Kind: EvClientStart})

	// Benign background noise: drop windows, loss windows, latency bursts,
	// and serial cuts, anywhere in the first three seconds.
	benignKinds := []EventKind{
		EvDropServing, EvDropStandby, EvDropClient,
		EvLossServing, EvLossStandby, EvLossClient,
		EvDelayServing, EvDelayStandby, EvDelayClient,
		EvSerialCut,
	}
	nBenign := rng.Intn(4)
	for i := 0; i < nBenign; i++ {
		ev := Event{At: dur(rng, 0, 3*time.Second), Kind: benignKinds[rng.Intn(len(benignKinds))]}
		switch ev.Kind {
		case EvDropServing, EvDropStandby, EvDropClient:
			// Shorter than the 600 ms HB timeout: must never cause
			// a spurious failover on a server link.
			ev.Dur = dur(rng, 50*time.Millisecond, 400*time.Millisecond)
		case EvLossServing, EvLossStandby, EvLossClient:
			ev.Rate = 0.05 + 0.20*rng.Float64()
			ev.Dur = dur(rng, 200*time.Millisecond, 2*time.Second)
		case EvDelayServing, EvDelayStandby, EvDelayClient:
			ev.Delay = dur(rng, time.Millisecond, 20*time.Millisecond)
			ev.Dur = dur(rng, 100*time.Millisecond, 2*time.Second)
		}
		sc.Events = append(sc.Events, ev)
	}

	// The fatal fault, biased toward the handshake window.
	fatalKinds := []EventKind{
		EvCrashServing, EvCrashServing, EvCrashServing,
		EvCrashStandby, EvCrashStandby,
		EvAppCrashServing, EvAppCrashServing,
		EvAppCrashStandby,
		EvNICFailServing, EvNICFailStandby,
	}
	haveFatal := nBenign == 0 || rng.Float64() < 0.75
	if haveFatal {
		fatal := Event{Kind: fatalKinds[rng.Intn(len(fatalKinds))]}
		if rng.Float64() < 0.30 {
			fatal.At = dur(rng, 0, 300*time.Millisecond)
		} else {
			fatal.At = dur(rng, 0, 1200*time.Millisecond)
		}
		if fatal.Kind == EvAppCrashServing || fatal.Kind == EvAppCrashStandby {
			fatal.Cleanup = rng.Float64() < 0.33
		}
		sc.Events = append(sc.Events, fatal)

		// A serving-side fatal fault can chain into the repair loop and
		// a second failover generation.
		servingFatal := fatal.Kind == EvCrashServing ||
			(fatal.Kind == EvAppCrashServing && !fatal.Cleanup) ||
			fatal.Kind == EvNICFailServing
		if servingFatal && rng.Float64() < 0.5 {
			rejoinAt := fatal.At + 4*time.Second + dur(rng, 0, 2*time.Second)
			sc.Events = append(sc.Events, Event{At: rejoinAt, Kind: EvRejoin})
			if rng.Float64() < 0.6 {
				clientAt := rejoinAt + dur(rng, 0, time.Second)
				sc.Events = append(sc.Events, Event{At: clientAt, Kind: EvSecondClient})
				if rng.Float64() < 0.6 {
					second := EvCrashServing
					if rng.Intn(2) == 0 {
						second = EvCrashStandby
					}
					sc.Events = append(sc.Events, Event{
						At:   clientAt + dur(rng, 200*time.Millisecond, 1500*time.Millisecond),
						Kind: second,
					})
				}
			}
		}
	}

	sort.SliceStable(sc.Events, func(i, j int) bool { return sc.Events[i].At < sc.Events[j].At })
	return sc
}
