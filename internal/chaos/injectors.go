package chaos

import (
	"fmt"

	"repro/internal/netem"
	"repro/internal/sttcp"
)

// The legacy (crisp Table 1) injectors. Each is a stateless singleton;
// per-event state travels in the Env stash.

func init() {
	Register(EvClientStart, clientInjector{name: "client-start"})
	Register(EvSecondClient, clientInjector{name: "second-client"})
	Register(EvCrashServing, crashServingInjector{})
	Register(EvCrashStandby, crashStandbyInjector{})
	Register(EvAppCrashServing, appCrashInjector{serving: true, name: "appcrash-serving"})
	Register(EvAppCrashStandby, appCrashInjector{serving: false, name: "appcrash-standby"})
	Register(EvNICFailServing, nicFailInjector{serving: true, name: "nicfail-serving"})
	Register(EvNICFailStandby, nicFailInjector{serving: false, name: "nicfail-standby"})
	Register(EvSerialCut, serialCutInjector{})
	Register(EvDropServing, dropInjector{name: "drop-serving"})
	Register(EvDropStandby, dropInjector{name: "drop-standby", standby: true})
	Register(EvDropClient, dropInjector{name: "drop-client"})
	Register(EvLossServing, lossInjector{name: "loss-serving", server: true})
	Register(EvLossStandby, lossInjector{name: "loss-standby", server: true, standby: true})
	Register(EvLossClient, lossInjector{name: "loss-client"})
	Register(EvDelayServing, delayInjector{name: "delay-serving"})
	Register(EvDelayStandby, delayInjector{name: "delay-standby"})
	Register(EvDelayClient, delayInjector{name: "delay-client"})
	Register(EvRejoin, rejoinInjector{})
}

// --- workload ---

type clientInjector struct {
	baseInjector
	name string
}

func (i clientInjector) Name() string { return i.name }

func (i clientInjector) Validate(env *Env, ev Event) string {
	host := env.ServingNode().Host()
	if host.Crashed() || env.AppCrashed(host) || env.NICFailed(host) {
		return "service is not reachable right now"
	}
	return ""
}

func (i clientInjector) Apply(env *Env, ev Event) error {
	return env.h.startClient(ev)
}

// --- machine crashes ---

type crashServingInjector struct{ baseInjector }

func (crashServingInjector) Name() string { return "crash-serving" }

func (crashServingInjector) Validate(env *Env, ev Event) string {
	if env.ServingNode().Host().Crashed() {
		return "serving host already down"
	}
	sb := env.StandbyNode()
	if sb == nil || !env.Healthy(sb.Host()) {
		return "no healthy standby to take over"
	}
	if !env.ClientsSurviveServingLoss() {
		return "unfinished pre-rejoin connection is local-only on the serving host"
	}
	if env.StandbyAtRisk() {
		return "standby link was recently lossy; ACKed-byte recovery may be in flight (§4.3 output-commit window)"
	}
	return ""
}

func (crashServingInjector) Apply(env *Env, ev Event) error {
	n := env.ServingNode()
	env.Note(ev, n.Host().Name())
	n.Host().CrashHW()
	return nil
}

type crashStandbyInjector struct{ baseInjector }

func (crashStandbyInjector) Name() string { return "crash-standby" }

func (crashStandbyInjector) Validate(env *Env, ev Event) string {
	if env.StandbyNode() == nil {
		return "no active standby"
	}
	if serving := env.ServingNode(); !env.Healthy(serving.Host()) {
		return "serving side unhealthy; killing the standby would lose service"
	}
	return ""
}

func (crashStandbyInjector) Apply(env *Env, ev Event) error {
	sb := env.StandbyNode()
	env.Note(ev, sb.Host().Name())
	sb.Host().CrashHW()
	return nil
}

// --- application crashes ---

type appCrashInjector struct {
	baseInjector
	serving bool
	name    string
}

func (i appCrashInjector) Name() string { return i.name }

func (i appCrashInjector) Validate(env *Env, ev Event) string {
	if i.serving {
		host := env.ServingNode().Host()
		if host.Crashed() || env.AppCrashed(host) {
			return "serving application already gone"
		}
		sb := env.StandbyNode()
		if sb == nil || !env.Healthy(sb.Host()) {
			return "no healthy standby to take over"
		}
		if !env.ClientsSurviveServingLoss() {
			return "unfinished pre-rejoin connection is local-only on the serving host"
		}
		return ""
	}
	sb := env.StandbyNode()
	if sb == nil {
		return "no active standby"
	}
	if env.AppCrashed(sb.Host()) {
		return "standby application already crashed"
	}
	if serving := env.ServingNode(); !env.Healthy(serving.Host()) {
		return "serving side unhealthy"
	}
	return ""
}

func (i appCrashInjector) Apply(env *Env, ev Event) error {
	var host = env.ServingNode().Host()
	if !i.serving {
		host = env.StandbyNode().Host()
	}
	env.Note(ev, host.Name())
	env.h.appCrashed[host] = true
	if ev.Cleanup {
		env.Server(host).CrashCleanup(false)
	} else {
		env.Server(host).CrashSilent()
	}
	return nil
}

// --- NIC failures ---

type nicFailInjector struct {
	baseInjector
	serving bool
	name    string
}

func (i nicFailInjector) Name() string { return i.name }

func (i nicFailInjector) Validate(env *Env, ev Event) string {
	if env.SerialCut() {
		// With the serial line gone a NIC failure is indistinguishable
		// from a full crash from BOTH sides: whichever server detects
		// total silence first STONITHs the other, and if the healthy
		// one loses that race the service dies. The real testbed has
		// the same exposure; the harness only injects survivable
		// combinations.
		return "serial already cut; NIC failure would be an unsurvivable double fault"
	}
	var n *sttcp.Node
	if i.serving {
		n = env.ServingNode()
		sb := env.StandbyNode()
		if sb == nil || !env.Healthy(sb.Host()) {
			return "no healthy standby to take over"
		}
		if !env.ClientsSurviveServingLoss() {
			return "unfinished pre-rejoin connection is local-only on the serving host"
		}
		if env.StandbyAtRisk() {
			return "standby link was recently lossy; ACKed-byte recovery may be in flight (§4.3 output-commit window)"
		}
	} else {
		n = env.StandbyNode()
		if n == nil {
			return "no active standby"
		}
		if serving := env.ServingNode(); !env.Healthy(serving.Host()) {
			return "serving side unhealthy"
		}
	}
	if n.Host().Crashed() || env.NICFailed(n.Host()) {
		return "target NIC already dead"
	}
	return ""
}

func (i nicFailInjector) Apply(env *Env, ev Event) error {
	n := env.ServingNode()
	if !i.serving {
		n = env.StandbyNode()
	}
	host := n.Host()
	env.Note(ev, host.Name())
	env.h.nicFailed[host] = true
	host.FailNIC()
	return nil
}

// --- serial cut ---

type serialCutInjector struct{ baseInjector }

func (serialCutInjector) Name() string { return "serial-cut" }

func (serialCutInjector) Validate(env *Env, ev Event) string {
	if env.SerialCut() {
		return "serial already cut"
	}
	if env.NICFailed(env.Testbed().Primary) || env.NICFailed(env.Testbed().Backup) {
		return "a server NIC is down; cutting serial too would be an unsurvivable double fault"
	}
	if env.LossWindowActive() {
		// A loss burst can silence enough IP heartbeats that, with
		// serial also gone, a healthy peer gets STONITHed.
		return "loss window active on a server link"
	}
	return ""
}

func (serialCutInjector) Apply(env *Env, ev Event) error {
	env.Note(ev, "serial cable")
	env.SetSerialCut(true)
	env.Testbed().SerialPrimary.SetDown(true)
	env.Testbed().SerialBackup.SetDown(true)
	return nil
}

// --- link windows (drop / loss / delay) ---

// linkTarget resolves a drop/loss/delay event to its ethernet link.
func (h *harness) linkTarget(ev Event) (*netem.Link, string, bool) {
	switch ev.Kind {
	case EvDropClient, EvLossClient, EvDelayClient:
		return h.tb.ClientLink, "client link", true
	case EvDropServing, EvLossServing, EvDelayServing:
		n := h.servingNode()
		if n.Host().Crashed() {
			return nil, "", false
		}
		return h.linkFor(n.Host()), n.Host().Name() + " link", true
	default:
		n := h.standbyNode()
		if n == nil {
			return nil, "", false
		}
		return h.linkFor(n.Host()), n.Host().Name() + " link", true
	}
}

type dropInjector struct {
	baseInjector
	name    string
	standby bool
}

func (i dropInjector) Name() string { return i.name }

func (i dropInjector) Validate(env *Env, ev Event) string {
	if _, _, ok := env.h.linkTarget(ev); !ok {
		return "no live target link"
	}
	return ""
}

func (i dropInjector) Apply(env *Env, ev Event) error {
	link, name, ok := env.h.linkTarget(ev)
	if !ok {
		return fmt.Errorf("no live target link")
	}
	env.Note(ev, name)
	if i.standby {
		env.NoteStandbyRisk(ev.Dur)
	}
	link.DropFromBFor(ev.Dur) // B side = switch port: drop inbound; self-expiring
	return nil
}

type lossInjector struct {
	name    string
	server  bool
	standby bool
}

func (i lossInjector) Name() string { return i.name }

func (i lossInjector) Validate(env *Env, ev Event) string {
	if _, _, ok := env.h.linkTarget(ev); !ok {
		return "no live target link"
	}
	if i.server && env.SerialCut() {
		return "serial is cut; heartbeat loss could STONITH a healthy peer"
	}
	return ""
}

func (i lossInjector) Apply(env *Env, ev Event) error {
	link, name, ok := env.h.linkTarget(ev)
	if !ok {
		return fmt.Errorf("no live target link")
	}
	env.Note(ev, name)
	link.SetLossRate(ev.Rate)
	if i.server {
		env.ExtendLossWindow(ev.Dur)
	}
	if i.standby {
		env.NoteStandbyRisk(ev.Dur)
	}
	env.Stash(link)
	return nil
}

func (i lossInjector) Revert(env *Env, ev Event) {
	if link, ok := env.Stashed().(*netem.Link); ok {
		link.SetLossRate(0)
	}
}

type delayInjector struct {
	name string
}

func (i delayInjector) Name() string { return i.name }

func (i delayInjector) Validate(env *Env, ev Event) string {
	if _, _, ok := env.h.linkTarget(ev); !ok {
		return "no live target link"
	}
	return ""
}

func (i delayInjector) Apply(env *Env, ev Event) error {
	link, name, ok := env.h.linkTarget(ev)
	if !ok {
		return fmt.Errorf("no live target link")
	}
	env.Note(ev, name)
	link.SetExtraDelay(ev.Delay)
	env.Stash(link)
	return nil
}

func (i delayInjector) Revert(env *Env, ev Event) {
	if link, ok := env.Stashed().(*netem.Link); ok {
		link.SetExtraDelay(0)
	}
}

// --- repair loop ---

type rejoinInjector struct{ baseInjector }

func (rejoinInjector) Name() string { return "rejoin" }

func (rejoinInjector) Validate(env *Env, ev Event) string {
	if survivor := env.h.lc.BackupNode(); survivor.State() != sttcp.StateTakenOver {
		return fmt.Sprintf("survivor is %v, not taken-over", survivor.State())
	}
	return ""
}

func (rejoinInjector) Apply(env *Env, ev Event) error {
	h := env.h
	dead := h.lc.PrimaryHost()
	if err := h.lc.Reintegrate(h.mkApp); err != nil {
		return fmt.Errorf("reintegrate: %v", err)
	}
	env.Note(ev, dead.Name())
	// The repair also replaces any cut serial cable (Reboot resets
	// only the dead side's port).
	if h.serialCut {
		h.tb.SerialPrimary.SetDown(false)
		h.tb.SerialBackup.SetDown(false)
		h.serialCut = false
	}
	h.nicFailed[dead] = false
	h.appCrashed[dead] = false
	h.haveRejoined = true
	h.lastRejoin = h.tb.Sim.Now()
	h.hookNode(h.lc.BackupNode())
	return nil
}
