package chaos

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/sttcp"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Violation is one broken invariant.
type Violation struct {
	// Invariant is the registry name (see InvariantNames).
	Invariant string
	// Detail says what was observed.
	Detail string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// InvariantNames lists the system-wide invariants every chaos run is
// checked against, in evaluation order.
//
//   - single-transmitter: at every node state change, at most one
//     non-crashed node believes it owns client output (an active or non-FT
//     primary, or a taken-over backup). STONITH-before-takeover is what
//     makes this hold.
//   - backup-silence: a node holding the backup role sends zero TCP
//     segments (output suppression), measured per role era from the host's
//     live tcp.segments_sent counter.
//   - client-integrity: every client finishes its workload with no error
//     and no pattern-verification failure — the paper's client-transparent
//     failover claim.
//   - takeover-latency: every recorded takeover latency is bounded by
//     HB.Timeout + HB.Period + 600 ms (detection timeout, plus liveness-
//     check quantisation, plus the worst benign inbound-drop window a
//     schedule may stack on top).
//   - hold-buffer-bound: the hold-buffer occupancy high-water mark never
//     exceeds the configured capacity.
//   - counter-trace: metric counters and trace events that record the same
//     incidents agree exactly (takeovers, non-FT transitions, suspects,
//     retransmits, heartbeats).
//   - span-integrity: the causal span tree is well-formed at end of run —
//     every takeover span has a suspect event on itself or an ancestor
//     (a takeover must be caused by a declared suspicion), no non-auto
//     span is left open, and the recorder saw no open/close errors.
//   - gray-quiescence: a run whose gray faults were all noise-class
//     (corruption, mild skew — no detection expectation recorded), with no
//     crisp fatal fault and no flap, must end with zero takeovers, zero
//     non-FT transitions, and zero suspects: checksum noise alone is never
//     grounds for a verdict.
//   - gray-detection-bound: every verdict-class gray fault (slow-not-dead
//     starve past the response SLO, asymmetric partition) must be answered
//     by a takeover starting no later than the injector's recorded
//     deadline.
//   - gray-evidence: every injected gray fault left its fingerprint —
//     corruption windows advanced a checksum/CRC reject counter, large
//     clock skew tripped the peer's cadence-drift note.
//   - flap-containment: interface flapping faster than the detection
//     period may legitimately trip a crisp detector once, but STONITH must
//     prevent dual-transmitter oscillation: at most one takeover.
func InvariantNames() []string {
	return []string{
		"single-transmitter",
		"backup-silence",
		"client-integrity",
		"takeover-latency",
		"hold-buffer-bound",
		"counter-trace",
		"span-integrity",
		"gray-quiescence",
		"gray-detection-bound",
		"gray-evidence",
		"flap-containment",
	}
}

// transmitterEntitled reports whether a node in (role, state) on a live
// host is entitled to transmit to clients: an active or non-FT primary,
// or a backup that has taken over.
func transmitterEntitled(role sttcp.Role, state sttcp.NodeState) bool {
	return state == sttcp.StateTakenOver ||
		(role == sttcp.RolePrimary && (state == sttcp.StateActive || state == sttcp.StateNonFT))
}

// singleTransmitterViolation judges the transmitter set observed at a
// node state change: more than one entitled node means split brain.
// cause names the transition that triggered the check.
func singleTransmitterViolation(elapsed time.Duration, cause string, who []string) (Violation, bool) {
	if len(who) <= 1 {
		return Violation{}, false
	}
	return Violation{
		Invariant: "single-transmitter",
		Detail: fmt.Sprintf("at %v (after %s): %s all believe they own client output",
			elapsed, cause, strings.Join(who, " and ")),
	}, true
}

// backupSilenceViolation judges one closed silence era: segments is the
// era's delta of the node's live tcp.segments_sent counter, which must
// be zero while the backup role is held.
func backupSilenceViolation(name string, segments int64, openedAt, closedAt time.Duration) (Violation, bool) {
	if segments <= 0 {
		return Violation{}, false
	}
	return Violation{
		Invariant: "backup-silence",
		Detail: fmt.Sprintf("%s sent %d TCP segments while holding the backup role (era %v–%v)",
			name, segments, openedAt, closedAt),
	}, true
}

// ClientSummary reports one workload connection's outcome.
type ClientSummary struct {
	Name     string
	Done     bool
	Err      string
	Progress string
}

func summarize(r *clientRec) ClientSummary {
	s := ClientSummary{Name: r.name}
	if r.dl != nil {
		s.Done = r.dl.Done
		if r.dl.Err != nil {
			s.Err = r.dl.Err.Error()
		}
		s.Progress = fmt.Sprintf("%d/%d bytes", r.dl.Received, r.dl.Request)
	} else {
		s.Done = r.ec.Done
		if r.ec.Err != nil {
			s.Err = r.ec.Err.Error()
		}
		s.Progress = fmt.Sprintf("%d/%d rounds", r.ec.RoundsDone, r.ec.Rounds)
	}
	return s
}

// RunResult is everything a chaos run produced.
type RunResult struct {
	Schedule Schedule
	Opts     Options
	Trace    *trace.Recorder
	Metrics  *metrics.Snapshot
	// Telemetry is the windowed time-series timeline, nil unless
	// Options.TelemetryWindow was set.
	Telemetry *telemetry.Timeline
	Clients   []ClientSummary
	// Violations is empty iff every invariant held.
	Violations []Violation
	// Skipped lists scheduled events the harness refused to inject (with
	// reasons): unsurvivable combinations or faults whose target was
	// already gone.
	Skipped []string
	// Injected counts successfully applied events per injector name.
	Injected map[string]int
}

// Failed reports whether any invariant was violated.
func (r *RunResult) Failed() bool { return len(r.Violations) > 0 }

// Report renders a failure report with the seed, the schedule, and every
// violation — everything needed to replay the run.
func (r *RunResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos run failed: %d invariant violation(s)\n", len(r.Violations))
	fmt.Fprintf(&b, "schedule: %v", r.Schedule)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  VIOLATION %v\n", v)
	}
	for _, c := range r.Clients {
		fmt.Fprintf(&b, "  client %s: done=%v %s", c.Name, c.Done, c.Progress)
		if c.Err != "" {
			fmt.Fprintf(&b, " err=%q", c.Err)
		}
		b.WriteString("\n")
	}
	for _, s := range r.Skipped {
		fmt.Fprintf(&b, "  skipped %s\n", s)
	}
	// The failing run's anatomy, right next to the seed: the span
	// timeline shows where detection, takeover, and the retransmission
	// wait actually sat when the invariant broke.
	if r.Trace != nil && r.Trace.Len() > 0 {
		b.WriteString("timeline:\n")
		b.WriteString(r.Trace.RenderSpanTimeline(trace.TimelineOptions{Width: 100, Epoch: sim.Epoch}))
	}
	grayFlag := ""
	if r.Schedule.HasGray() {
		grayFlag = " -chaos.gray"
	}
	fmt.Fprintf(&b, "replay: go test ./internal/chaos -run TestChaos -chaos.seed=%d%s\n", r.Schedule.Seed, grayFlag)
	return b.String()
}

// endInvariants evaluates the invariants that are checked once, after the
// run (the live ones — single-transmitter, backup-silence — accumulate in
// h.violations as the run progresses).
func (h *harness) endInvariants(snap *metrics.Snapshot) []Violation {
	var out []Violation
	bad := func(inv, format string, args ...any) {
		out = append(out, Violation{Invariant: inv, Detail: fmt.Sprintf(format, args...)})
	}

	// client-integrity: the paper's claim — every client finishes, with
	// every byte verified against the deterministic pattern.
	for _, r := range h.clients {
		s := summarize(r)
		switch {
		case !s.Done:
			bad("client-integrity", "%s never finished (%s)", s.Name, s.Progress)
		case s.Err != "":
			bad("client-integrity", "%s failed: %s", s.Name, s.Err)
		}
		var verr int64
		if r.dl != nil {
			verr = r.dl.VerifyFailures
		} else {
			verr = r.ec.VerifyFailures
		}
		if verr > 0 {
			bad("client-integrity", "%s observed %d byte-pattern mismatches", s.Name, verr)
		}
	}

	// takeover-latency: detection must act within the heartbeat budget.
	bound := h.cfg.HB.Timeout + h.cfg.HB.Period + 600*time.Millisecond
	for _, sm := range snap.Find("sttcp.takeover_latency") {
		if sm.Type == "histogram" && sm.Count > 0 && sm.MaxDur > bound {
			bad("takeover-latency", "%s recorded takeover latency %v > bound %v",
				sm.Component, sm.MaxDur, bound)
		}
	}

	// hold-buffer-bound: occupancy may never exceed capacity.
	for _, sm := range snap.Find("sttcp.holdbuf_bytes") {
		if sm.Type == "gauge" && sm.Max > int64(h.cfg.HoldBufferSize) {
			bad("hold-buffer-bound", "%s hold buffer peaked at %d bytes > capacity %d",
				sm.Component, sm.Max, h.cfg.HoldBufferSize)
		}
	}

	// counter-trace: the two observability channels record the same
	// incidents at the same call sites, so totals must agree exactly.
	pairs := []struct {
		counter string
		kind    trace.Kind
	}{
		{"sttcp.takeovers", trace.KindTakeover},
		{"sttcp.nonft_transitions", trace.KindNonFTMode},
		{"sttcp.suspects", trace.KindSuspect},
		{"tcp.retransmits", trace.KindRetransmit},
		{"hb.sent", trace.KindHBSent},
	}
	// With the flight recorder actively evicting, the event log is no
	// longer complete, so checks that need full history step aside.
	evicted := h.tb.Tracer.DroppedEvents() > 0 || h.tb.Tracer.DroppedSpans() > 0
	if !evicted {
		for _, p := range pairs {
			got := snap.CounterTotal(p.counter)
			want := int64(h.tb.Tracer.Count(p.kind))
			if got != want {
				bad("counter-trace", "counter %s total %d != %d %v trace events",
					p.counter, got, want, p.kind)
			}
		}
	}

	// span-integrity: the causal tree must be coherent. A takeover with
	// no suspect in its ancestry means the backup promoted itself
	// without a declared suspicion; an open non-auto span or a recorded
	// open/close error means leaked instrumentation.
	if !evicted {
		for _, sp := range h.tb.Tracer.FilterSpans(trace.KindTakeover) {
			if !h.tb.Tracer.CausallyLinked(sp.ID, trace.KindSuspect) {
				bad("span-integrity", "takeover span #%d (%s) has no causally-linked suspect ancestor",
					sp.ID, sp.Component)
			}
		}
	}
	for _, sp := range h.tb.Tracer.OpenSpans() {
		bad("span-integrity", "span #%d (%v %s %q) left open at end of run",
			sp.ID, sp.Kind, sp.Component, sp.Message)
	}
	for _, e := range h.tb.Tracer.SpanErrors() {
		bad("span-integrity", "recorder error: %s", e)
	}

	// gray-quiescence: noise-class degradation (corruption, mild skew)
	// must never escalate to a verdict. Only judged when the run injected
	// gray noise and nothing that legitimately warrants one: no verdict
	// expectation, no crisp fatal fault, no flap.
	if h.grayNoise > 0 && len(h.grayExpects) == 0 && !h.fatalInjected && !h.flapApplied {
		for _, ctr := range []string{"sttcp.takeovers", "sttcp.nonft_transitions", "sttcp.suspects"} {
			if n := snap.CounterTotal(ctr); n > 0 {
				bad("gray-quiescence", "noise-only gray run still recorded %d %s", n, ctr)
			}
		}
	}

	// gray-detection-bound: a verdict-class gray fault must be answered
	// by a takeover starting at or before its recorded deadline.
	if len(h.grayExpects) > 0 {
		var earliest time.Time
		for _, sp := range h.tb.Tracer.FilterSpans(trace.KindTakeover) {
			if earliest.IsZero() || sp.Start.Before(earliest) {
				earliest = sp.Start
			}
		}
		for _, ex := range h.grayExpects {
			switch {
			case earliest.IsZero():
				bad("gray-detection-bound", "no takeover answered %s (deadline %v)",
					ex.what, ex.deadline)
			case earliest.Sub(sim.Epoch) > ex.deadline:
				bad("gray-detection-bound", "takeover answering %s started at %v, past deadline %v",
					ex.what, earliest.Sub(sim.Epoch), ex.deadline)
			}
		}
	}

	// gray-evidence: each injected gray fault must have left its
	// fingerprint by end of run.
	for _, e := range h.grayEvidence {
		if !e.ok() {
			bad("gray-evidence", "expected evidence never materialised: %s", e.desc)
		}
	}

	// flap-containment: a flap may trip a crisp detector once; STONITH
	// must prevent the second takeover (oscillation).
	if h.flapApplied {
		if n := snap.CounterTotal("sttcp.takeovers"); n > 1 {
			bad("flap-containment", "flapping caused %d takeovers; STONITH must prevent oscillation", n)
		}
	}
	return out
}
