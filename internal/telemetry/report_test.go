package telemetry

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

func sampleReport() *Report {
	return &Report{
		Version:    ReportVersion,
		Demo:       "demo2",
		Seed:       42,
		Scheduler:  "heap",
		Params:     map[string]string{"hb": "200ms"},
		FinishedAt: sim.Epoch.Add(10 * time.Second),
		Telemetry: &Timeline{
			Window:  100 * time.Millisecond,
			Start:   sim.Epoch,
			Windows: 4,
			Series: []SeriesData{
				{Name: "client.response_latency.p99", Unit: "seconds", Points: []float64{0.001, 0.001, 0.5, 0.001}},
				{Name: "tcp.segments_sent.rate", Unit: "count/window", Points: []float64{10, 12, 0, 11}},
			},
		},
		Anatomy: []Phases{{
			Component: "backup/sttcp", FaultKind: "host-crash",
			Detection: 600 * time.Millisecond, Takeover: 5 * time.Millisecond,
			RetransmitWait: 300 * time.Millisecond, ClientStall: 900 * time.Millisecond,
		}},
		Chaos: &ChaosReport{
			Schedule: "seed=42 2 events",
			Events:   2,
			Invariants: []InvariantVerdict{
				{Name: "no-data-loss"},
				{Name: "single-active-stack"},
			},
		},
	}
}

func TestReportRoundTrip(t *testing.T) {
	r := sampleReport()
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.FinishedAt.Equal(r.FinishedAt) {
		t.Errorf("FinishedAt round-tripped to %v", back.FinishedAt)
	}
	back.FinishedAt, back.Telemetry.Start = r.FinishedAt, r.Telemetry.Start
	if !reflect.DeepEqual(r, back) {
		t.Errorf("report did not round-trip.\nwrote %+v\nread  %+v", r, back)
	}
}

func TestReadRejectsUnknownVersion(t *testing.T) {
	_, err := Read(strings.NewReader(`{"version": 99}`))
	if err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Errorf("unknown version error = %v, want version complaint", err)
	}
}

func TestPhasesFromAnatomy(t *testing.T) {
	a := trace.FailoverAnatomy{
		Component:       "backup/sttcp",
		FaultKind:       trace.KindHostCrash,
		Detection:       600 * time.Millisecond,
		Takeover:        5 * time.Millisecond,
		RetransmitWait:  295 * time.Millisecond,
		PipelineDrain:   40 * time.Millisecond,
		DeliveryLatency: 30 * time.Millisecond,
		ClientStall:     890 * time.Millisecond,
	}
	p := PhasesFromAnatomy(a)
	if p.Detection != a.Detection || p.FaultKind != trace.KindHostCrash.String() {
		t.Errorf("PhasesFromAnatomy dropped fields: %+v", p)
	}
	if p.Residual != a.Residual() {
		t.Errorf("Residual = %v, want %v", p.Residual, a.Residual())
	}
}

func TestDiffGenuinePairIsClean(t *testing.T) {
	base, cand := sampleReport(), sampleReport()
	cand.Scheduler = "calendar" // the legitimate scheduler-compare case
	d := DiffReports(base, cand, DiffOptions{})
	if !d.Ok() {
		t.Fatalf("identical virtual runs must diff clean, got %v", d.Regressions)
	}
	found := false
	for _, n := range d.Notes {
		if strings.Contains(n, "scheduler differs") {
			found = true
		}
	}
	if !found {
		t.Error("scheduler difference should be noted informationally")
	}
}

func TestDiffCatchesLatencyRegression(t *testing.T) {
	base, cand := sampleReport(), sampleReport()
	for i := range cand.Telemetry.Series[0].Points {
		cand.Telemetry.Series[0].Points[i] *= 10 // degrade p99 everywhere
	}
	d := DiffReports(base, cand, DiffOptions{})
	if d.Ok() {
		t.Fatal("10x p99 degradation must regress")
	}
	if !strings.Contains(d.Regressions[0], "client.response_latency.p99") {
		t.Errorf("regression should name the series: %v", d.Regressions)
	}
}

func TestDiffCatchesAnatomyDrift(t *testing.T) {
	base, cand := sampleReport(), sampleReport()
	cand.Anatomy[0].Detection = 2 * time.Second // vs 600ms baseline
	d := DiffReports(base, cand, DiffOptions{})
	if d.Ok() {
		t.Fatal("3x detection drift must regress")
	}
	if !strings.Contains(d.Regressions[0], "detection") {
		t.Errorf("regression should name the phase: %v", d.Regressions)
	}
	// Drift inside tolerance is a note, not a regression.
	cand.Anatomy[0].Detection = 610 * time.Millisecond
	if d := DiffReports(base, cand, DiffOptions{}); !d.Ok() {
		t.Errorf("10ms drift within slack flagged as regression: %v", d.Regressions)
	}
}

func TestDiffCatchesNewInvariantViolation(t *testing.T) {
	base, cand := sampleReport(), sampleReport()
	cand.Chaos.Invariants[0].Violations = []string{"gap at byte 4096"}
	d := DiffReports(base, cand, DiffOptions{})
	if d.Ok() {
		t.Fatal("new invariant violation must regress")
	}
	if !strings.Contains(d.Regressions[0], "no-data-loss") {
		t.Errorf("regression should name the invariant: %v", d.Regressions)
	}
}

func TestDiffExtraFailoverRegresses(t *testing.T) {
	base, cand := sampleReport(), sampleReport()
	cand.Anatomy = append(cand.Anatomy, cand.Anatomy[0])
	if d := DiffReports(base, cand, DiffOptions{}); d.Ok() {
		t.Fatal("an extra (unexpected) failover must regress")
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline([]float64{0, 1}, 2); got != "▁█" {
		t.Errorf("Sparkline(0,1) = %q, want low+high glyphs", got)
	}
	// Downsampling takes the max per cell so a spike survives.
	pts := make([]float64, 100)
	pts[57] = 9
	got := Sparkline(pts, 10)
	if !strings.ContainsRune(got, '█') {
		t.Errorf("spike lost in downsampling: %q", got)
	}
	if Sparkline(nil, 10) != "" {
		t.Error("empty series should render empty")
	}
	// All-zero series renders as a flat floor, not NaN garbage.
	if got := Sparkline([]float64{0, 0, 0}, 3); got != "▁▁▁" {
		t.Errorf("flat series = %q, want floor glyphs", got)
	}
}

func TestRenderDashboardGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderDashboard(&buf, sampleReport(), RenderOptions{Width: 20}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"demo=demo2", "seed=42", "scheduler=heap",
		"telemetry: 4 windows x 100ms",
		"client.response_latency.p99",
		"failover anatomy:",
		"no-data-loss", "held",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard missing %q:\n%s", want, out)
		}
	}
	// Deterministic: rendering twice is byte-identical.
	var again bytes.Buffer
	if err := RenderDashboard(&again, sampleReport(), RenderOptions{Width: 20}); err != nil {
		t.Fatal(err)
	}
	if out != again.String() {
		t.Error("dashboard rendering is not deterministic")
	}
}
