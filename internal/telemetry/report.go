package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// ReportVersion is the run-report schema version. Readers reject files
// whose version they do not understand; bump it on incompatible changes
// and teach Read about the old shape if migration matters.
const ReportVersion = 1

// Report is the single versioned artifact a run emits: everything a later
// session (or CI) needs to reproduce, inspect, and diff the run. Every
// figure in it derives from virtual time — no wall clocks, hostnames, or
// toolchain versions — so reports are byte-comparable across machines.
//
// The package deliberately does not import the experiment or chaos
// packages (they import telemetry); those layers fill the plain-typed
// sections here.
type Report struct {
	Version int `json:"version"`

	// Run identity: which demo/scenario, under what knobs.
	Demo      string            `json:"demo,omitempty"`
	Seed      int64             `json:"seed"`
	Scheduler string            `json:"scheduler,omitempty"`
	Params    map[string]string `json:"params,omitempty"`

	// FinishedAt is the virtual instant the run ended.
	FinishedAt time.Time `json:"finished_at"`

	Metrics   *metrics.Snapshot `json:"metrics,omitempty"`
	Telemetry *Timeline         `json:"telemetry,omitempty"`
	Anatomy   []Phases          `json:"anatomy,omitempty"`
	Chaos     *ChaosReport      `json:"chaos,omitempty"`
	Bench     []BenchPoint      `json:"bench,omitempty"`
}

// Phases is the plain-typed mirror of trace.FailoverAnatomy: one
// failover's phase decomposition, in a shape that serializes compactly
// and diffs field-by-field.
type Phases struct {
	Component string `json:"component"`
	FaultKind string `json:"fault_kind,omitempty"`

	Detection      time.Duration `json:"detection"`
	Takeover       time.Duration `json:"takeover"`
	RetransmitWait time.Duration `json:"retransmit_wait"`

	PipelineDrain   time.Duration `json:"pipeline_drain"`
	DeliveryLatency time.Duration `json:"delivery_latency"`
	ClientStall     time.Duration `json:"client_stall"`
	Residual        time.Duration `json:"residual,omitempty"`
}

// PhasesFromAnatomy converts one recorded anatomy into its report form.
func PhasesFromAnatomy(a trace.FailoverAnatomy) Phases {
	return Phases{
		Component:       a.Component,
		FaultKind:       a.FaultKind.String(),
		Detection:       a.Detection,
		Takeover:        a.Takeover,
		RetransmitWait:  a.RetransmitWait,
		PipelineDrain:   a.PipelineDrain,
		DeliveryLatency: a.DeliveryLatency,
		ClientStall:     a.ClientStall,
		Residual:        a.Residual(),
	}
}

// ChaosReport captures a chaos run's schedule and invariant verdicts.
type ChaosReport struct {
	// Schedule is the human-readable fault schedule (chaos.Schedule.String).
	Schedule string `json:"schedule"`
	// Events is the number of scheduled fault events.
	Events int `json:"events"`
	// Invariants holds one verdict per system-wide invariant, in
	// chaos.InvariantNames order.
	Invariants []InvariantVerdict `json:"invariants"`
	// Injected counts successfully applied fault events per injector
	// name — the ground truth for what the run actually exercised (a
	// skipped event leaves no count here).
	Injected map[string]int `json:"injected,omitempty"`
	// Skipped lists events the harness could not apply (if any).
	Skipped []string `json:"skipped,omitempty"`
}

// InvariantVerdict is one invariant's outcome: an empty Violations slice
// means it held.
type InvariantVerdict struct {
	Name       string   `json:"name"`
	Violations []string `json:"violations,omitempty"`
}

// Violated reports whether any invariant in the chaos section failed.
func (c *ChaosReport) Violated() bool {
	if c == nil {
		return false
	}
	for _, iv := range c.Invariants {
		if len(iv.Violations) > 0 {
			return true
		}
	}
	return false
}

// BenchPoint is one benchmark figure carried along in the report. Bench
// numbers are wall-clock and machine-dependent, so DiffReports treats
// them as informational only.
type BenchPoint struct {
	Name         string  `json:"name"`
	NsPerOp      float64 `json:"ns_per_op,omitempty"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

// Write serializes the report as indented JSON.
func (r *Report) Write(w io.Writer) error {
	if r.Version == 0 {
		r.Version = ReportVersion
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path ("-" for stdout).
func WriteFile(path string, r *Report) error {
	if path == "-" {
		return r.Write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: write report: %w", err)
	}
	if err := r.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read parses a report and validates its version.
func Read(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("telemetry: read report: %w", err)
	}
	if r.Version != ReportVersion {
		return nil, fmt.Errorf("telemetry: report version %d, this build reads version %d", r.Version, ReportVersion)
	}
	return &r, nil
}

// ReadFile reads a report from path.
func ReadFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: read report: %w", err)
	}
	defer f.Close()
	return Read(f)
}
