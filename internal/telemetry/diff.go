package telemetry

import (
	"fmt"
	"time"
)

// DiffOptions tunes the regression gates. Zero values get defaults.
type DiffOptions struct {
	// LatencyTolerance is the allowed relative growth of a windowed
	// latency series' peak or mean before it counts as a regression
	// (default 0.25 = +25%).
	LatencyTolerance float64
	// LatencySlack is an absolute floor under which latency growth is
	// never flagged, so sub-millisecond jitter cannot fail a gate
	// (default 1ms).
	LatencySlack time.Duration
	// PhaseTolerance is the allowed relative growth of a failover
	// anatomy phase (default 0.25).
	PhaseTolerance float64
	// PhaseSlack is the absolute slack for phase comparisons
	// (default 50ms).
	PhaseSlack time.Duration
	// MetricNoteLimit caps the informational metric-delta notes
	// (default 20).
	MetricNoteLimit int
}

func (o DiffOptions) withDefaults() DiffOptions {
	if o.LatencyTolerance <= 0 {
		o.LatencyTolerance = 0.25
	}
	if o.LatencySlack <= 0 {
		o.LatencySlack = time.Millisecond
	}
	if o.PhaseTolerance <= 0 {
		o.PhaseTolerance = 0.25
	}
	if o.PhaseSlack <= 0 {
		o.PhaseSlack = 50 * time.Millisecond
	}
	if o.MetricNoteLimit <= 0 {
		o.MetricNoteLimit = 20
	}
	return o
}

// Diff is the outcome of comparing a candidate report against a baseline.
// Regressions gate (non-zero exit in sttcp-report -diff); Notes are
// informational drift.
type Diff struct {
	Regressions []string `json:"regressions,omitempty"`
	Notes       []string `json:"notes,omitempty"`
}

// Ok reports whether the candidate passed every gate.
func (d *Diff) Ok() bool { return d == nil || len(d.Regressions) == 0 }

func (d *Diff) regress(format string, args ...any) {
	d.Regressions = append(d.Regressions, fmt.Sprintf(format, args...))
}

func (d *Diff) note(format string, args ...any) {
	d.Notes = append(d.Notes, fmt.Sprintf(format, args...))
}

// DiffReports compares candidate cand against baseline base. Three gates
// produce regressions:
//
//  1. windowed latency series (".p50"/".p99"/".max" suffixes): the
//     candidate's peak and mean may not exceed the baseline's by more
//     than the tolerance (plus absolute slack);
//  2. failover anatomy: each phase of each failover may not grow past
//     tolerance+slack, and the failover count may not increase;
//  3. chaos invariants: a violation in the candidate that the baseline
//     did not have fails outright.
//
// Everything else — counter deltas, bench figures, config drift — is
// reported as notes only, because it is either machine-dependent or an
// expected consequence of the comparison (e.g. heap vs calendar
// scheduler runs legitimately differ in scheduler name).
func DiffReports(base, cand *Report, opts DiffOptions) *Diff {
	o := opts.withDefaults()
	d := &Diff{}

	if base.Demo != cand.Demo {
		d.note("demo differs: %q vs %q", base.Demo, cand.Demo)
	}
	if base.Seed != cand.Seed {
		d.note("seed differs: %d vs %d", base.Seed, cand.Seed)
	}
	if base.Scheduler != cand.Scheduler {
		d.note("scheduler differs: %q vs %q", base.Scheduler, cand.Scheduler)
	}

	d.diffLatencySeries(base.Telemetry, cand.Telemetry, o)
	d.diffAnatomy(base.Anatomy, cand.Anatomy, o)
	d.diffChaos(base.Chaos, cand.Chaos)
	d.diffMetrics(base, cand, o)
	return d
}

func isLatencySeries(name string) bool {
	for _, suf := range [...]string{".p50", ".p99", ".max"} {
		if len(name) > len(suf) && name[len(name)-len(suf):] == suf {
			return true
		}
	}
	return false
}

func (d *Diff) diffLatencySeries(base, cand *Timeline, o DiffOptions) {
	if base == nil || cand == nil {
		if (base == nil) != (cand == nil) {
			d.note("telemetry timeline present in only one report")
		}
		return
	}
	slack := o.LatencySlack.Seconds()
	for _, bs := range base.Series {
		if !isLatencySeries(bs.Name) {
			continue
		}
		cs := cand.Find(bs.Name)
		if cs == nil {
			d.note("series %s missing from candidate", bs.Name)
			continue
		}
		bPeak, _ := bs.Max()
		cPeak, cAt := cs.Max()
		if cPeak > bPeak*(1+o.LatencyTolerance)+slack {
			d.regress("latency series %s peak %.4gs exceeds baseline %.4gs (+%.0f%% tolerance) at window %d",
				bs.Name, cPeak, bPeak, o.LatencyTolerance*100, cAt)
		}
		bMean, cMean := bs.Mean(), cs.Mean()
		if cMean > bMean*(1+o.LatencyTolerance)+slack {
			d.regress("latency series %s mean %.4gs exceeds baseline %.4gs (+%.0f%% tolerance)",
				bs.Name, cMean, bMean, o.LatencyTolerance*100)
		}
	}
}

func (d *Diff) diffAnatomy(base, cand []Phases, o DiffOptions) {
	if len(cand) > len(base) {
		d.regress("candidate has %d failovers, baseline %d", len(cand), len(base))
	} else if len(cand) < len(base) {
		d.note("candidate has %d failovers, baseline %d", len(cand), len(base))
	}
	n := len(base)
	if len(cand) < n {
		n = len(cand)
	}
	phases := [...]struct {
		name string
		get  func(Phases) time.Duration
	}{
		{"detection", func(p Phases) time.Duration { return p.Detection }},
		{"takeover", func(p Phases) time.Duration { return p.Takeover }},
		{"retransmit-wait", func(p Phases) time.Duration { return p.RetransmitWait }},
		{"client-stall", func(p Phases) time.Duration { return p.ClientStall }},
	}
	for i := 0; i < n; i++ {
		for _, ph := range phases {
			b, c := ph.get(base[i]), ph.get(cand[i])
			limit := time.Duration(float64(b)*(1+o.PhaseTolerance)) + o.PhaseSlack
			if c > limit {
				d.regress("failover %d phase %s drifted %v -> %v (limit %v)", i, ph.name, b, c, limit)
			} else if c != b {
				d.note("failover %d phase %s %v -> %v", i, ph.name, b, c)
			}
		}
	}
}

func (d *Diff) diffChaos(base, cand *ChaosReport) {
	if cand == nil {
		if base != nil {
			d.note("chaos section present only in baseline")
		}
		return
	}
	baseViol := map[string]int{}
	if base != nil {
		for _, iv := range base.Invariants {
			baseViol[iv.Name] = len(iv.Violations)
		}
	}
	for _, iv := range cand.Invariants {
		if len(iv.Violations) > baseViol[iv.Name] {
			d.regress("invariant %s: %d violations (baseline %d): %s",
				iv.Name, len(iv.Violations), baseViol[iv.Name], iv.Violations[0])
		}
	}
}

func (d *Diff) diffMetrics(base, cand *Report, o DiffOptions) {
	if base.Metrics == nil || cand.Metrics == nil {
		return
	}
	noted := 0
	for _, bs := range base.Metrics.Samples {
		if bs.Type != "counter" {
			continue
		}
		cv := cand.Metrics.Counter(bs.Component, bs.Name, bs.Labels)
		if cv == bs.Value {
			continue
		}
		if noted < o.MetricNoteLimit {
			d.note("counter %s/%s%s %d -> %d", bs.Component, bs.Name, labelSuffix(bs.Labels), bs.Value, cv)
		}
		noted++
	}
	if noted > o.MetricNoteLimit {
		d.note("... and %d more counter deltas", noted-o.MetricNoteLimit)
	}
}

func labelSuffix(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}
