package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// sparkGlyphs are the eight block heights a sparkline cell can take.
var sparkGlyphs = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders points as a fixed-width run of block glyphs, scaled
// to the series' own max. Series longer than width are downsampled by
// taking the max of each cell's span, so a one-window spike survives
// compression instead of averaging away.
func Sparkline(points []float64, width int) string {
	if width <= 0 || len(points) == 0 {
		return ""
	}
	cells := make([]float64, width)
	if len(points) <= width {
		cells = cells[:len(points)]
		copy(cells, points)
	} else {
		for i := range cells {
			lo := i * len(points) / width
			hi := (i + 1) * len(points) / width
			if hi <= lo {
				hi = lo + 1
			}
			m := points[lo]
			for _, v := range points[lo+1 : hi] {
				if v > m {
					m = v
				}
			}
			cells[i] = m
		}
	}
	var max float64
	for _, v := range cells {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range cells {
		if max <= 0 || v <= 0 {
			b.WriteRune(sparkGlyphs[0])
			continue
		}
		idx := int(v / max * float64(len(sparkGlyphs)-1))
		if idx >= len(sparkGlyphs) {
			idx = len(sparkGlyphs) - 1
		}
		b.WriteRune(sparkGlyphs[idx])
	}
	return b.String()
}

// RenderOptions tunes the dashboard.
type RenderOptions struct {
	// Width is the sparkline width in cells (default 60).
	Width int
	// Filter, when non-empty, keeps only series whose name contains it.
	Filter string
}

// RenderDashboard writes the report as an ASCII dashboard: run identity,
// one sparkline row per series, the failover anatomy table, and chaos
// invariant verdicts. Output is deterministic for a given report, so it
// golden-tests cleanly.
func RenderDashboard(w io.Writer, r *Report, opts RenderOptions) error {
	width := opts.Width
	if width <= 0 {
		width = 60
	}
	var b strings.Builder
	fmt.Fprintf(&b, "run report v%d", r.Version)
	if r.Demo != "" {
		fmt.Fprintf(&b, "  demo=%s", r.Demo)
	}
	fmt.Fprintf(&b, "  seed=%d", r.Seed)
	if r.Scheduler != "" {
		fmt.Fprintf(&b, "  scheduler=%s", r.Scheduler)
	}
	b.WriteByte('\n')
	if len(r.Params) > 0 {
		b.WriteString("params:")
		for _, k := range sortedKeys(r.Params) {
			fmt.Fprintf(&b, " %s=%s", k, r.Params[k])
		}
		b.WriteByte('\n')
	}

	if tl := r.Telemetry; tl != nil {
		fmt.Fprintf(&b, "\ntelemetry: %d windows x %v", tl.Windows, tl.Window)
		if tl.Dropped > 0 {
			fmt.Fprintf(&b, " (%d oldest dropped)", tl.Dropped)
		}
		b.WriteString("\n\n")
		nameW := 0
		for _, s := range tl.Series {
			if opts.Filter != "" && !strings.Contains(s.Name, opts.Filter) {
				continue
			}
			if len(s.Name) > nameW {
				nameW = len(s.Name)
			}
		}
		for _, s := range tl.Series {
			if opts.Filter != "" && !strings.Contains(s.Name, opts.Filter) {
				continue
			}
			peak, at := s.Max()
			fmt.Fprintf(&b, "  %-*s %s  peak %s @w%d  mean %s\n",
				nameW, s.Name, Sparkline(s.Points, width), fmtValue(peak, s.Unit), at, fmtValue(s.Mean(), s.Unit))
		}
	}

	if len(r.Anatomy) > 0 {
		b.WriteString("\nfailover anatomy:\n")
		b.WriteString("  #  detection     takeover      retransmit-wait  client-stall\n")
		for i, p := range r.Anatomy {
			fmt.Fprintf(&b, "  %-2d %-13v %-13v %-16v %v\n",
				i, p.Detection, p.Takeover, p.RetransmitWait, p.ClientStall)
		}
	}

	if c := r.Chaos; c != nil {
		fmt.Fprintf(&b, "\nchaos: %d events\n", c.Events)
		if len(c.Injected) > 0 {
			names := make([]string, 0, len(c.Injected))
			for name := range c.Injected {
				names = append(names, name)
			}
			sort.Strings(names)
			b.WriteString("  injected:")
			for _, name := range names {
				fmt.Fprintf(&b, " %s×%d", name, c.Injected[name])
			}
			b.WriteString("\n")
		}
		for _, iv := range c.Invariants {
			verdict := "held"
			if len(iv.Violations) > 0 {
				verdict = fmt.Sprintf("VIOLATED (%d)", len(iv.Violations))
			}
			fmt.Fprintf(&b, "  %-28s %s\n", iv.Name, verdict)
		}
	}

	if len(r.Bench) > 0 {
		b.WriteString("\nbench:\n")
		for _, bp := range r.Bench {
			fmt.Fprintf(&b, "  %-40s %.0f ns/op\n", bp.Name, bp.NsPerOp)
		}
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// RenderDiff writes a diff in the fixed shape the CI log and the exit
// status contract rely on: regressions first, then notes.
func RenderDiff(w io.Writer, d *Diff) error {
	var b strings.Builder
	if d.Ok() {
		b.WriteString("diff: OK — no regressions\n")
	} else {
		fmt.Fprintf(&b, "diff: %d regression(s)\n", len(d.Regressions))
		for _, r := range d.Regressions {
			fmt.Fprintf(&b, "  REGRESSION: %s\n", r)
		}
	}
	for _, n := range d.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// fmtValue renders a point with its unit: seconds get duration form,
// everything else a compact number.
func fmtValue(v float64, unit string) string {
	if unit == "seconds" {
		return time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
	}
	return fmt.Sprintf("%.6g", v)
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
