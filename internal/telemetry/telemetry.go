// Package telemetry is the testbed's time-series layer: it samples every
// instrument in a metrics.Registry once per virtual-time window and keeps
// the per-window values in preallocated rings, so a run's whole history —
// not just its final totals — can be exported, rendered as a dashboard,
// and diffed against another run.
//
// The sampling tick is on the simulator hot path (one event per window for
// the whole run), so it follows the repo's zero-allocation discipline:
// every ring, track, and scratch buffer is allocated when the series is
// registered, and the steady-state tick only reads instruments and writes
// ring cells. Registry growth after sampling began is detected by
// comparing Registry.Len and handled on a cold refresh path.
//
// On top of raw instrument sampling the package offers derived series:
//
//   - Windowed: per-window latency percentiles (p50/p99/max) computed from
//     a histogram's bucket deltas;
//   - ClientTrack: per-connection progress cells aggregated into
//     stalled-connection counts and delivered-byte rates;
//   - probes: arbitrary cold-registered closures polled once per window
//     (scheduler queue depth, serial-link utilization, ...).
//
// Telemetry must never change simulation behavior: the tick consumes no
// randomness and schedules via a sim.Ticker, so enabling it shifts event
// sequence numbers but preserves the relative order of protocol events —
// a run with telemetry reaches the same virtual-time outcome as without.
package telemetry

import (
	"sort"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// DefaultWindow is the sampling period when Config.Window is zero: fine
// enough to resolve a sub-second failover stall, coarse enough that a
// minutes-long run stays in a few thousand windows.
const DefaultWindow = 100 * time.Millisecond

// DefaultMaxWindows bounds each series ring when Config.MaxWindows is
// zero. Older windows are evicted once the ring is full; Timeline reports
// how many were dropped. Sized so a standard 10-minute demo horizon at
// DefaultWindow (6,000 windows) fits without evicting the failover
// activity at the start of the run.
const DefaultMaxWindows = 8192

// Config parameterizes a Sampler.
type Config struct {
	// Window is the sampling period in virtual time (DefaultWindow if 0).
	Window time.Duration
	// MaxWindows caps each series ring (DefaultMaxWindows if 0). When a
	// run outlives the cap, the rings keep the most recent MaxWindows
	// windows and Timeline.Dropped counts the evicted ones.
	MaxWindows int
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.MaxWindows <= 0 {
		c.MaxWindows = DefaultMaxWindows
	}
	return c
}

// series is one named time series backed by a fixed ring. The Sampler's
// global window counter indexes every ring, so a series registered
// mid-run simply has zero cells for the windows before it existed.
type series struct {
	name string
	unit string
	ring []float64
}

// trackKind says which instrument a track samples.
type trackKind uint8

const (
	trackCounter trackKind = iota
	trackGauge
	trackHisto
)

// track binds one registry instrument to its series. Counters and
// histograms are sampled as per-window deltas, gauges as instantaneous
// values.
type track struct {
	kind trackKind
	c    *metrics.Counter
	g    *metrics.Gauge
	h    *metrics.Histogram
	last int64
	ser  *series
}

// probe is a cold-registered callback polled once per window.
type probe struct {
	fn  func() float64
	ser *series
}

// Sampler drives the per-window sampling loop for one simulation run.
// Create it with NewSampler, register derived series, then Start it.
type Sampler struct {
	sim *sim.Simulator
	reg *metrics.Registry
	cfg Config

	ticker  *sim.Ticker
	start   time.Time
	windows int // completed windows

	allSeries []*series
	tracks    []track
	probes    []probe
	windowed  []*Windowed
	clients   []*ClientTrack

	clientStalled  *series
	clientProgress *series
	clientLatency  bool // client.response_latency windowed series created

	regLen int // Registry.Len at last refresh
}

// NewSampler builds a sampler over s and reg. reg may be nil (only
// probes, Windowed, and ClientTrack series are collected then). The
// sampler is idle until Start.
func NewSampler(s *sim.Simulator, reg *metrics.Registry, cfg Config) *Sampler {
	sp := &Sampler{
		sim: s,
		reg: reg,
		cfg: cfg.withDefaults(),
	}
	sp.refresh()
	return sp
}

// Window returns the sampling period (0 on nil).
func (sp *Sampler) Window() time.Duration {
	if sp == nil {
		return 0
	}
	return sp.cfg.Window
}

// Start begins sampling: the first window closes one period from now.
// Calling Start twice panics (the sim.Ticker would double-fire). Like the
// metrics registry, a nil *Sampler is a valid no-op sink, so telemetry
// stays strictly opt-in for every layer that plumbs it through.
func (sp *Sampler) Start() {
	if sp == nil {
		return
	}
	if sp.ticker != nil {
		panic("telemetry: Sampler.Start called twice")
	}
	sp.refresh() // baseline instruments registered since construction
	sp.start = sp.sim.Now()
	// A daemon ticker: sampling must never extend the run. The last
	// partial window after the workload drains goes unsampled, which is
	// the right trade — it would otherwise be an endless tail of zeros.
	sp.ticker = sim.NewDaemonTicker(sp.sim, sp.cfg.Window, sp.tick)
}

// Stop halts sampling. Idempotent; safe before Start and on nil.
func (sp *Sampler) Stop() {
	if sp != nil && sp.ticker != nil {
		sp.ticker.Stop()
	}
}

// newSeries allocates a ring and registers the series (cold path).
func (sp *Sampler) newSeries(name, unit string) *series {
	s := &series{name: name, unit: unit, ring: make([]float64, sp.cfg.MaxWindows)}
	sp.allSeries = append(sp.allSeries, s)
	return s
}

// AddProbe registers a callback polled once per window; its values form
// the series name. The closure is created here, on the cold path — the
// tick merely calls it. No-op on nil.
func (sp *Sampler) AddProbe(name, unit string, fn func() float64) {
	if sp == nil {
		return
	}
	sp.probes = append(sp.probes, probe{fn: fn, ser: sp.newSeries(name, unit)})
}

// refresh rescans the registry and adds tracks for instruments that
// appeared since the last scan. Cold path: runs at construction and
// whenever the tick notices Registry.Len changed.
func (sp *Sampler) refresh() {
	sp.regLen = sp.reg.Len()
	known := make(map[string]bool, len(sp.tracks))
	for i := range sp.tracks {
		known[sp.tracks[i].ser.name] = true
	}
	for _, ref := range sp.reg.Instruments() {
		base := ref.Component + "." + ref.Name
		if ref.Labels != "" {
			base += "{" + ref.Labels + "}"
		}
		if ref.Counter != nil && !known[base+".rate"] {
			sp.tracks = append(sp.tracks, track{
				kind: trackCounter, c: ref.Counter, last: ref.Counter.Value(),
				ser: sp.newSeries(base+".rate", "count/window"),
			})
		}
		if ref.Gauge != nil && !known[base] {
			sp.tracks = append(sp.tracks, track{
				kind: trackGauge, g: ref.Gauge,
				ser: sp.newSeries(base, "value"),
			})
		}
		if ref.Histogram != nil && !known[base+".rate"] {
			sp.tracks = append(sp.tracks, track{
				kind: trackHisto, h: ref.Histogram, last: ref.Histogram.Count(),
				ser: sp.newSeries(base+".rate", "count/window"),
			})
		}
	}
}

// tick closes one window: it samples every track, probe, windowed
// percentile set, and client track into ring cell windows%MaxWindows.
// One event per window for the whole run, so it must not allocate.
//
//sttcp:hotpath
func (sp *Sampler) tick() {
	if sp.reg.Len() != sp.regLen {
		sp.refresh() //sttcp:allow hotpathalloc cold: runs only when instruments were added mid-run
	}
	idx := sp.windows % sp.cfg.MaxWindows
	for i := range sp.tracks {
		t := &sp.tracks[i]
		switch t.kind {
		case trackCounter:
			v := t.c.Value()
			t.ser.ring[idx] = float64(v - t.last)
			t.last = v
		case trackGauge:
			t.ser.ring[idx] = float64(t.g.Value())
		case trackHisto:
			v := t.h.Count()
			t.ser.ring[idx] = float64(v - t.last)
			t.last = v
		}
	}
	for i := range sp.probes {
		sp.probes[i].ser.ring[idx] = sp.probes[i].fn()
	}
	for i := range sp.windowed {
		sp.windowed[i].sample(idx)
	}
	sp.sampleClients(idx)
	sp.windows++
}

// Windowed computes per-window latency percentiles from a histogram's
// bucket deltas. A percentile is reported as the upper bound of the
// bucket the target observation falls in (in seconds); the windowed max
// is the highest non-empty bucket's bound, or the histogram's global
// max when the overflow bucket was hit.
type Windowed struct {
	h    *metrics.Histogram
	last []int64 // previous cumulative bucket counts
	cur  []int64 // scratch: this window's deltas

	p50, p99, max *series
}

// NewWindowed registers p50/p99/max per-window percentile series for h
// under name (name.p50, name.p99, name.max, all in seconds). Cold path;
// nil on a nil sampler.
func (sp *Sampler) NewWindowed(name string, h *metrics.Histogram) *Windowed {
	if sp == nil {
		return nil
	}
	n := h.NumBounds() + 1
	w := &Windowed{
		h:    h,
		last: make([]int64, n),
		cur:  make([]int64, n),
		p50:  sp.newSeries(name+".p50", "seconds"),
		p99:  sp.newSeries(name+".p99", "seconds"),
		max:  sp.newSeries(name+".max", "seconds"),
	}
	for i := 0; i < n; i++ {
		w.last[i] = h.BucketCount(i)
	}
	sp.windowed = append(sp.windowed, w)
	return w
}

//sttcp:hotpath
func (w *Windowed) sample(idx int) {
	var total int64
	for i := range w.cur {
		c := w.h.BucketCount(i)
		w.cur[i] = c - w.last[i]
		w.last[i] = c
		total += w.cur[i]
	}
	if total == 0 {
		w.p50.ring[idx] = 0
		w.p99.ring[idx] = 0
		w.max.ring[idx] = 0
		return
	}
	w.p50.ring[idx] = w.quantile(total, 50)
	w.p99.ring[idx] = w.quantile(total, 99)
	hi := 0
	for i := range w.cur {
		if w.cur[i] > 0 {
			hi = i
		}
	}
	w.max.ring[idx] = w.boundSeconds(hi)
}

// quantile returns the upper bound (seconds) of the bucket holding the
// q-th percentile observation among this window's total deltas.
//
//sttcp:hotpath
func (w *Windowed) quantile(total, q int64) float64 {
	target := (total*q + 99) / 100 // ceil(total*q/100)
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range w.cur {
		cum += w.cur[i]
		if cum >= target {
			return w.boundSeconds(i)
		}
	}
	return w.boundSeconds(len(w.cur) - 1)
}

// boundSeconds maps bucket i to a representative latency in seconds: the
// bucket's upper bound, or the histogram's global max for the overflow
// bucket (the best in-range figure available without per-window reservoirs).
//
//sttcp:hotpath
func (w *Windowed) boundSeconds(i int) float64 {
	if i >= w.h.NumBounds() {
		return w.h.Max().Seconds()
	}
	return w.h.Bound(i).Seconds()
}

// ClientTrack is one connection's progress cell. The delivery path calls
// Deliver; the sampler reads and resets the per-window delta to derive
// the aggregate stalled-connection and progress-rate series.
type ClientTrack struct {
	hist  *metrics.Histogram // shared response-latency histogram; may be nil
	bytes int64              // cumulative delivered bytes
	last  int64              // sampler-side: bytes at previous window close
}

// Deliver records n delivered bytes and, when lat > 0, one client-visible
// response latency observation.
//
//sttcp:hotpath
func (t *ClientTrack) Deliver(n int, lat time.Duration) {
	if t == nil {
		return
	}
	t.bytes += int64(n)
	if lat > 0 {
		t.hist.Observe(lat)
	}
}

// Bytes returns the cumulative delivered bytes (0 on nil).
func (t *ClientTrack) Bytes() int64 {
	if t == nil {
		return 0
	}
	return t.bytes
}

// NewClientTrack registers a per-connection progress cell. The first call
// also creates the aggregate derived series (client.stalled_conns,
// client.progress_bytes) and the shared client.response_latency windowed
// percentiles. Cold path; returns a track safe to use from hot code.
func (sp *Sampler) NewClientTrack() *ClientTrack {
	if sp == nil {
		return nil
	}
	if sp.clientStalled == nil {
		sp.clientStalled = sp.newSeries("client.stalled_conns", "connections")
		sp.clientProgress = sp.newSeries("client.progress_bytes", "bytes/window")
	}
	var h *metrics.Histogram
	if sp.reg != nil {
		h = sp.reg.Histogram("telemetry", "client.response_latency", nil)
		if !sp.clientLatency {
			sp.clientLatency = true
			sp.NewWindowed("client.response_latency", h)
		}
	}
	t := &ClientTrack{hist: h}
	sp.clients = append(sp.clients, t)
	return t
}

//sttcp:hotpath
func (sp *Sampler) sampleClients(idx int) {
	if sp.clientStalled == nil {
		return
	}
	var stalled, prog int64
	for _, ct := range sp.clients {
		d := ct.bytes - ct.last
		ct.last = ct.bytes
		prog += d
		if d == 0 {
			stalled++
		}
	}
	sp.clientStalled.ring[idx] = float64(stalled)
	sp.clientProgress.ring[idx] = float64(prog)
}

// Timeline is the exported, serializable view of a sampler's rings:
// every series' points in chronological order, plus enough metadata to
// align two runs window-for-window.
type Timeline struct {
	Window  time.Duration `json:"window"`
	Start   time.Time     `json:"start"`             // virtual time sampling began
	Windows int           `json:"windows"`           // windows sampled over the run
	Dropped int           `json:"dropped,omitempty"` // oldest windows evicted from the rings
	Series  []SeriesData  `json:"series"`
}

// SeriesData is one series' retained points, oldest first. When windows
// were dropped, Points starts at window index Timeline.Dropped.
type SeriesData struct {
	Name   string    `json:"name"`
	Unit   string    `json:"unit,omitempty"`
	Points []float64 `json:"points"`
}

// Timeline materializes the rings into a Timeline (cold path, end of
// run). Series are sorted by name so serialization is deterministic.
// Nil on a nil sampler.
func (sp *Sampler) Timeline() *Timeline {
	if sp == nil {
		return nil
	}
	tl := &Timeline{
		Window:  sp.cfg.Window,
		Start:   sp.start,
		Windows: sp.windows,
	}
	n := sp.windows
	if n > sp.cfg.MaxWindows {
		tl.Dropped = n - sp.cfg.MaxWindows
		n = sp.cfg.MaxWindows
	}
	for _, s := range sp.allSeries {
		pts := make([]float64, n)
		if sp.windows <= sp.cfg.MaxWindows {
			copy(pts, s.ring[:n])
		} else {
			head := sp.windows % sp.cfg.MaxWindows // oldest retained cell
			copy(pts, s.ring[head:])
			copy(pts[sp.cfg.MaxWindows-head:], s.ring[:head])
		}
		tl.Series = append(tl.Series, SeriesData{Name: s.name, Unit: s.unit, Points: pts})
	}
	sort.Slice(tl.Series, func(i, j int) bool { return tl.Series[i].Name < tl.Series[j].Name })
	return tl
}

// Find returns the named series, or nil. Nil-safe.
func (t *Timeline) Find(name string) *SeriesData {
	if t == nil {
		return nil
	}
	for i := range t.Series {
		if t.Series[i].Name == name {
			return &t.Series[i]
		}
	}
	return nil
}

// WindowIndex maps a virtual instant to the window that contains it
// (-1 before sampling started). Nil-safe.
func (t *Timeline) WindowIndex(at time.Time) int {
	if t == nil || at.Before(t.Start) || t.Window <= 0 {
		return -1
	}
	return int(at.Sub(t.Start) / t.Window)
}

// Max returns the largest point and its window index (-1 when empty).
func (s *SeriesData) Max() (float64, int) {
	if s == nil || len(s.Points) == 0 {
		return 0, -1
	}
	best, at := s.Points[0], 0
	for i, v := range s.Points {
		if v > best {
			best, at = v, i
		}
	}
	return best, at
}

// Mean returns the arithmetic mean of the points (0 when empty).
func (s *SeriesData) Mean() float64 {
	if s == nil || len(s.Points) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.Points {
		sum += v
	}
	return sum / float64(len(s.Points))
}
