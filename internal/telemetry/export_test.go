package telemetry

// TickForTest exposes the sampling tick so the alloc gate can drive it
// directly without a simulator event per iteration.
func (sp *Sampler) TickForTest() { sp.tick() }

// WindowsForTest reports completed windows.
func (sp *Sampler) WindowsForTest() int { return sp.windows }
