package telemetry

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
)

func newTestSampler(t *testing.T, cfg Config) (*sim.Simulator, *metrics.Registry, *Sampler) {
	t.Helper()
	s := sim.New(1)
	r := metrics.New(s.Now)
	return s, r, NewSampler(s, r, cfg)
}

// runTo drives the sim to d with a sentinel workload event at the end.
// The sampler's ticks are daemon events — they only fire while foreground
// work remains — so a test workload must span the range it wants sampled,
// exactly like a real run.
func runTo(t *testing.T, s *sim.Simulator, d time.Duration) {
	t.Helper()
	s.Post(d, func() {})
	if err := s.Run(d); err != nil {
		t.Fatal(err)
	}
}

func TestSamplerCounterDeltasAndGaugeValues(t *testing.T) {
	s, r, sp := newTestSampler(t, Config{Window: 100 * time.Millisecond})
	c := r.Counter("tcp", "segments_sent")
	g := r.Gauge("backup", "hold_buffer_bytes")
	sp.Start()

	// Window 0: 3 increments. Window 1: none. Window 2: 5 via Add.
	s.Post(10*time.Millisecond, func() { c.Inc(); c.Inc(); c.Inc(); g.Set(100) })
	s.Post(210*time.Millisecond, func() { c.Add(5); g.Set(40) })
	runTo(t, s, 350*time.Millisecond)

	tl := sp.Timeline()
	if tl.Windows != 3 {
		t.Fatalf("windows = %d, want 3", tl.Windows)
	}
	rate := tl.Find("tcp.segments_sent.rate")
	if rate == nil {
		t.Fatal("counter rate series missing")
	}
	if want := []float64{3, 0, 5}; !floatsEqual(rate.Points, want) {
		t.Errorf("counter deltas = %v, want %v", rate.Points, want)
	}
	gauge := tl.Find("backup.hold_buffer_bytes")
	if want := []float64{100, 100, 40}; !floatsEqual(gauge.Points, want) {
		t.Errorf("gauge values = %v, want %v", gauge.Points, want)
	}
}

func TestSamplerPicksUpLateRegisteredInstruments(t *testing.T) {
	s, r, sp := newTestSampler(t, Config{Window: 100 * time.Millisecond})
	sp.Start()
	// Instrument registered after sampling began: the tick's Len check
	// must notice it on the next window.
	s.Post(150*time.Millisecond, func() { r.Counter("late", "arrivals").Add(2) })
	runTo(t, s, 350*time.Millisecond)
	rate := sp.Timeline().Find("late.arrivals.rate")
	if rate == nil {
		t.Fatal("late-registered counter was never tracked")
	}
	// Registered inside window 1 with initial value 2 observed at
	// refresh, so the delta series is flat zero afterwards — the point is
	// that it exists and later increments would show.
	if len(rate.Points) != 3 {
		t.Fatalf("late series has %d points, want 3", len(rate.Points))
	}
}

func TestWindowedPercentiles(t *testing.T) {
	s, r, sp := newTestSampler(t, Config{Window: 100 * time.Millisecond})
	h := r.Histogram("app", "latency", []time.Duration{
		time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond, time.Second,
	})
	sp.NewWindowed("app.latency", h)
	sp.Start()

	// Window 0: 99 fast observations (<=1ms) and 1 slow (<=1s): p50 on
	// the 1ms bound, p99 on 1ms too (99th of 100 = the 99th observation,
	// still fast), max on 1s.
	s.Post(10*time.Millisecond, func() {
		for i := 0; i < 99; i++ {
			h.Observe(500 * time.Microsecond)
		}
		h.Observe(700 * time.Millisecond)
	})
	// Window 1: all slow — p50 jumps to the 1s bound.
	s.Post(110*time.Millisecond, func() {
		for i := 0; i < 10; i++ {
			h.Observe(400 * time.Millisecond)
		}
	})
	runTo(t, s, 350*time.Millisecond)

	tl := sp.Timeline()
	p50 := tl.Find("app.latency.p50")
	p99 := tl.Find("app.latency.p99")
	max := tl.Find("app.latency.max")
	if p50 == nil || p99 == nil || max == nil {
		t.Fatal("windowed percentile series missing")
	}
	if p50.Points[0] != 0.001 {
		t.Errorf("window 0 p50 = %v, want 0.001 (1ms bound)", p50.Points[0])
	}
	if p99.Points[0] != 0.001 {
		t.Errorf("window 0 p99 = %v, want 0.001 (99 of 100 fast)", p99.Points[0])
	}
	if max.Points[0] != 1.0 {
		t.Errorf("window 0 max = %v, want 1.0 (1s bound)", max.Points[0])
	}
	if p50.Points[1] != 1.0 {
		t.Errorf("window 1 p50 = %v, want 1.0 (all slow)", p50.Points[1])
	}
	// Quiet window: all three series report zero.
	if p50.Points[2] != 0 || p99.Points[2] != 0 || max.Points[2] != 0 {
		t.Errorf("quiet window percentiles = %v/%v/%v, want zeros",
			p50.Points[2], p99.Points[2], max.Points[2])
	}
}

func TestWindowedOverflowUsesGlobalMax(t *testing.T) {
	s, r, sp := newTestSampler(t, Config{Window: 100 * time.Millisecond})
	h := r.Histogram("app", "latency", []time.Duration{time.Millisecond})
	sp.NewWindowed("app.latency", h)
	sp.Start()
	s.Post(10*time.Millisecond, func() { h.Observe(3 * time.Second) }) // overflow bucket
	runTo(t, s, 150*time.Millisecond)
	max := sp.Timeline().Find("app.latency.max")
	if max.Points[0] != 3.0 {
		t.Errorf("overflow window max = %v, want 3.0 (histogram global max)", max.Points[0])
	}
}

func TestClientTracksDeriveStallAndProgress(t *testing.T) {
	s, _, sp := newTestSampler(t, Config{Window: 100 * time.Millisecond})
	a := sp.NewClientTrack()
	b := sp.NewClientTrack()
	sp.Start()

	// Window 0: both progress. Window 1: only a progresses (b stalled).
	// Window 2: both stalled.
	s.Post(10*time.Millisecond, func() {
		a.Deliver(100, 2*time.Millisecond)
		b.Deliver(50, time.Millisecond)
	})
	s.Post(110*time.Millisecond, func() { a.Deliver(70, 3*time.Millisecond) })
	runTo(t, s, 350*time.Millisecond)

	tl := sp.Timeline()
	stalled := tl.Find("client.stalled_conns")
	if want := []float64{0, 1, 2}; !floatsEqual(stalled.Points, want) {
		t.Errorf("stalled_conns = %v, want %v", stalled.Points, want)
	}
	prog := tl.Find("client.progress_bytes")
	if want := []float64{150, 70, 0}; !floatsEqual(prog.Points, want) {
		t.Errorf("progress_bytes = %v, want %v", prog.Points, want)
	}
	if tl.Find("client.response_latency.p99") == nil {
		t.Error("client latency percentile series missing")
	}
	if a.Bytes() != 170 || b.Bytes() != 50 {
		t.Errorf("cumulative bytes = %d/%d, want 170/50", a.Bytes(), b.Bytes())
	}
	// Nil track is a no-op, matching the metrics package contract.
	var nilTrack *ClientTrack
	nilTrack.Deliver(10, time.Millisecond)
	if nilTrack.Bytes() != 0 {
		t.Error("nil ClientTrack must be inert")
	}
}

func TestProbesSampledPerWindow(t *testing.T) {
	s, _, sp := newTestSampler(t, Config{Window: 100 * time.Millisecond})
	depth := 0.0
	sp.AddProbe("sched.pending", "events", func() float64 { return depth })
	sp.Start()
	s.Post(50*time.Millisecond, func() { depth = 7 })
	s.Post(150*time.Millisecond, func() { depth = 3 })
	runTo(t, s, 250*time.Millisecond)
	ser := sp.Timeline().Find("sched.pending")
	if want := []float64{7, 3}; !floatsEqual(ser.Points, want) {
		t.Errorf("probe series = %v, want %v", ser.Points, want)
	}
}

func TestRingWrapKeepsMostRecentWindows(t *testing.T) {
	s, _, sp := newTestSampler(t, Config{Window: 10 * time.Millisecond, MaxWindows: 4})
	w := 0.0
	sp.AddProbe("w", "index", func() float64 { w++; return w })
	sp.Start()
	runTo(t, s, 105*time.Millisecond)
	tl := sp.Timeline()
	if tl.Windows != 10 || tl.Dropped != 6 {
		t.Fatalf("windows/dropped = %d/%d, want 10/6", tl.Windows, tl.Dropped)
	}
	ser := tl.Find("w")
	if want := []float64{7, 8, 9, 10}; !floatsEqual(ser.Points, want) {
		t.Errorf("retained points = %v, want most recent %v", ser.Points, want)
	}
}

func TestWindowIndex(t *testing.T) {
	tl := &Timeline{Start: sim.Epoch, Window: 100 * time.Millisecond}
	if got := tl.WindowIndex(sim.Epoch.Add(250 * time.Millisecond)); got != 2 {
		t.Errorf("WindowIndex(+250ms) = %d, want 2", got)
	}
	if got := tl.WindowIndex(sim.Epoch.Add(-time.Second)); got != -1 {
		t.Errorf("WindowIndex before start = %d, want -1", got)
	}
}

// TestTickDoesNotAllocate is the hot-path gate: one sampling tick over a
// realistic instrument population (counters, gauges, a windowed
// histogram, client tracks, probes) must not allocate once warm.
func TestTickDoesNotAllocate(t *testing.T) {
	s := sim.New(1)
	r := metrics.New(s.Now)
	sp := NewSampler(s, r, Config{Window: 100 * time.Millisecond, MaxWindows: 64})
	c := r.Counter("tcp", "segments_sent")
	g := r.Gauge("backup", "hold_buffer_bytes")
	h := r.Histogram("app", "latency", nil)
	sp.NewWindowed("app.latency", h)
	ct := sp.NewClientTrack()
	pending := 0.0
	sp.AddProbe("sched.pending", "events", func() float64 { return pending })
	sp.start = s.Now()

	sp.TickForTest() // absorb the refresh for the client latency histogram
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(42)
		h.Observe(3 * time.Millisecond)
		ct.Deliver(64, 2*time.Millisecond)
		sp.TickForTest()
	}); n != 0 {
		t.Errorf("sampling tick allocated %.1f times per run, want 0", n)
	}
}

func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
