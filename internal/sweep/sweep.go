// Package sweep fans independent experiment runs across a worker pool.
//
// It is the single audited place where sim-driven code crosses a
// goroutine boundary (the simdeterminism analyzer carves it out by
// import-path suffix). The contract that makes the parallelism safe and
// deterministic:
//
//   - Each job owns one sealed simulation world: every *sim.Simulator,
//     stack, and random stream a job touches is constructed inside the
//     job from its seed, and nothing escapes except the returned value.
//   - Results are merged by input position, never by completion order,
//     so Run(workers=N, seeds) is byte-identical to Run(workers=1, seeds).
//   - Errors are joined in seed order for the same reason.
//
// Jobs must not share mutable state; anything a job reads besides its
// seed must be immutable for the duration of the sweep.
package sweep

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/sim"
)

// Seeds returns n consecutive seeds starting at base — the conventional
// shape of a sweep's input, kept explicit so result files record exactly
// which seeds produced them.
func Seeds(base int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)
	}
	return out
}

// Run executes job(seed) for every seed on a pool of workers goroutines
// and returns the results indexed by seed position. workers < 1 (and
// workers > len(seeds)) is clamped, so Run(0, ...) is a serial sweep.
//
// All workers are joined before Run returns: no job outlives the call.
// If any jobs fail, Run still completes the rest and returns the
// failures joined in seed order; results at failed positions are the
// zero value of T.
func Run[T any](workers int, seeds []int64, job func(seed int64) (T, error)) ([]T, error) {
	results := make([]T, len(seeds))
	errs := make([]error, len(seeds))
	if workers < 1 || workers > len(seeds) {
		workers = len(seeds)
	}
	if workers <= 1 {
		for i, seed := range seeds {
			results[i], errs[i] = job(seed)
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range next {
					results[i], errs[i] = job(seeds[i])
				}
			}()
		}
		for i := range seeds {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	var failed []error
	for i, err := range errs {
		if err != nil {
			failed = append(failed, fmt.Errorf("seed %d: %w", seeds[i], err))
		}
	}
	return results, errors.Join(failed...)
}

// RunSim is Run for jobs that drive a simulation: it constructs one
// fresh sim.New(seed) per job, so the job cannot accidentally share a
// simulator (and its event loop, clock, and random stream) between
// seeds. The simulator is sealed to the job — it must not be retained
// past the job's return.
func RunSim[T any](workers int, seeds []int64, job func(s *sim.Simulator, seed int64) (T, error)) ([]T, error) {
	return RunSimKind(workers, seeds, sim.SchedulerDefault, job)
}

// RunSimKind is RunSim with an explicit event-queue selection for every
// job's simulator. Results are identical for every kind; the sweep merge
// order depends only on the input seed order either way.
func RunSimKind[T any](workers int, seeds []int64, kind sim.SchedulerKind, job func(s *sim.Simulator, seed int64) (T, error)) ([]T, error) {
	return Run(workers, seeds, func(seed int64) (T, error) {
		return job(sim.NewWithConfig(sim.Config{Seed: seed, Scheduler: kind}), seed)
	})
}
