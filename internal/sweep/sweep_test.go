package sweep

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/sim"
)

// simTrace runs a tiny simulation to a fixed horizon and returns a
// string capturing its event order and random draws — any
// nondeterminism in the sweep machinery would show up as a mismatch
// against the serial run.
func simTrace(s *sim.Simulator, seed int64) (string, error) {
	out := fmt.Sprintf("seed=%d", seed)
	r := s.Rand()
	for i := 0; i < 5; i++ {
		d := time.Duration(r.Int63n(int64(10 * time.Millisecond)))
		s.Schedule(d, func() {
			out += fmt.Sprintf(" %v", s.Now().UnixNano())
		})
	}
	if err := s.Run(time.Second); err != nil {
		return "", err
	}
	return out, nil
}

func TestSeeds(t *testing.T) {
	got := Seeds(100, 4)
	want := []int64{100, 101, 102, 103}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Seeds(100, 4) = %v, want %v", got, want)
	}
	if len(Seeds(1, 0)) != 0 {
		t.Fatal("Seeds(1, 0) should be empty")
	}
}

// TestParallelMatchesSerial is the sweep contract: for the same seed
// list, any worker count produces byte-identical results in seed order.
func TestParallelMatchesSerial(t *testing.T) {
	seeds := Seeds(42, 16)
	serial, err := RunSim(1, seeds, simTrace)
	if err != nil {
		t.Fatalf("serial sweep: %v", err)
	}
	for _, workers := range []int{0, 2, 4, 16, 64} {
		par, err := RunSim(workers, seeds, simTrace)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(par, serial) {
			t.Fatalf("workers=%d diverged from serial:\n par=%v\nser=%v", workers, par, serial)
		}
	}
}

// TestRunSimFreshSimulatorPerSeed checks each job gets its own world:
// no pointer is handed to two jobs.
func TestRunSimFreshSimulatorPerSeed(t *testing.T) {
	seen := make(map[*sim.Simulator]bool)
	sims, err := RunSim(1, Seeds(7, 8), func(s *sim.Simulator, seed int64) (*sim.Simulator, error) {
		return s, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sims {
		if seen[s] {
			t.Fatal("simulator shared between jobs")
		}
		seen[s] = true
	}
}

// TestErrorsJoinedInSeedOrder: failures surface deterministically, in
// seed order, regardless of which worker hit them first.
func TestErrorsJoinedInSeedOrder(t *testing.T) {
	boom := errors.New("boom")
	seeds := Seeds(0, 10)
	results, err := Run(4, seeds, func(seed int64) (int, error) {
		if seed%3 == 0 {
			return 0, boom
		}
		return int(seed * 2), nil
	})
	if err == nil {
		t.Fatal("want joined error")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("errors.Is lost the cause: %v", err)
	}
	want := "seed 0: boom\nseed 3: boom\nseed 6: boom\nseed 9: boom"
	if err.Error() != want {
		t.Fatalf("error order:\n got %q\nwant %q", err.Error(), want)
	}
	// Successful positions still carry their results.
	if results[1] != 2 || results[5] != 10 {
		t.Fatalf("successful results lost: %v", results)
	}
}

func TestRunEmptySeeds(t *testing.T) {
	results, err := Run(8, nil, func(seed int64) (int, error) { return 0, nil })
	if err != nil || len(results) != 0 {
		t.Fatalf("empty sweep: results=%v err=%v", results, err)
	}
}
