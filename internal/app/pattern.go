// Package app provides the deterministic client/server applications used by
// the paper's demonstrations: a data server streaming a verifiable byte
// pattern (the "GUI pie chart" transfer of Demos 1 and 4), a progress-
// tracking client, and an echo pair that keeps both directions of the
// connection busy. ST-TCP requires the server application to be
// deterministic — the replica on the backup must produce exactly the same
// byte stream from the same input (paper §2) — so every application here is
// purely reactive: it acts only on connection events, never on wall-clock
// timers.
package app

// PatternByte is the deterministic payload byte at stream offset off. The
// client verifies every received byte against it, which turns any
// sequence-number mistake during failover into a hard test failure.
func PatternByte(off int64) byte {
	return byte(uint64(off)*131 + 7)
}

// FillPattern writes the pattern for offsets [off, off+len(p)) into p.
func FillPattern(off int64, p []byte) {
	for i := range p {
		p[i] = PatternByte(off + int64(i))
	}
}

// VerifyPattern returns the index of the first byte of p that does not
// match the pattern starting at offset off, or -1 if all match.
func VerifyPattern(off int64, p []byte) int {
	for i := range p {
		if p[i] != PatternByte(off+int64(i)) {
			return i
		}
	}
	return -1
}
