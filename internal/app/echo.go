package app

import (
	"fmt"
	"time"

	"repro/internal/ip"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// EchoServer echoes every received byte back to the client. Because it
// continuously reads *and* writes, it is the workload on which the
// application-lag failure detector (§4.2.1) and the NIC-failure client-data
// criterion (§4.3) are exercised.
type EchoServer struct {
	name   string
	tracer *trace.Recorder

	crashed bool
	conns   map[*tcp.Conn]*echoState

	// cpu models scheduler starvation on the host (SetCPU): at rates
	// above 1 each processing quantum is deferred by the stretch, so
	// responses slow down while the host's timers — and heartbeats —
	// stay on schedule. Nil or rate 1 keeps the pump fully inline.
	cpu *sim.Clock
	sm  *sim.Simulator

	// BytesEchoed totals bytes written back.
	BytesEchoed int64
}

type echoState struct {
	pending  []byte // read but not yet written back
	deferred bool   // a starved pump is already scheduled
}

// procQuantum is the nominal processing time one pump invocation stands
// for. At CPU rate r a pump is deferred by (r-1)×procQuantum; at rate 1
// it runs inline with zero deferral, bit-for-bit as before.
const procQuantum = time.Millisecond

// NewEchoServer builds an echo server.
func NewEchoServer(name string, tracer *trace.Recorder) *EchoServer {
	return &EchoServer{name: name, tracer: tracer, conns: make(map[*tcp.Conn]*echoState)}
}

// SetCPU attaches the host's CPU clock so injected starvation stretches
// this server's processing time. Call before traffic starts.
func (s *EchoServer) SetCPU(sm *sim.Simulator, cpu *sim.Clock) {
	s.sm, s.cpu = sm, cpu
}

// schedulePump runs the pump inline at nominal CPU rate, or defers it by
// the starvation stretch otherwise. Deferred pumps coalesce per
// connection: however many readable/writable wakeups arrive during the
// wait, the starved process gets one quantum at the end of it.
func (s *EchoServer) schedulePump(c *tcp.Conn, st *echoState) {
	if s.cpu.Rate() == 1 || s.sm == nil {
		s.pump(c, st)
		return
	}
	if st.deferred {
		return
	}
	st.deferred = true
	s.sm.Schedule(s.cpu.Stretch(procQuantum)-procQuantum, func() {
		st.deferred = false
		s.pump(c, st)
	})
}

// Accept adopts an established connection.
func (s *EchoServer) Accept(c *tcp.Conn) {
	st := &echoState{}
	s.conns[c] = st
	c.OnReadable = func() { s.schedulePump(c, st) }
	c.OnWritable = func() { s.schedulePump(c, st) }
	c.OnClose = func(error) { delete(s.conns, c) }
	s.schedulePump(c, st)
}

// CrashSilent stops the echo loop without closing sockets (no FIN).
func (s *EchoServer) CrashSilent() {
	s.crashed = true
	if s.tracer != nil {
		s.tracer.Emit(trace.KindAppCrash, s.name, "echo application crashed (no cleanup)")
	}
}

// StartHealthBeats runs a local timer that calls beat every interval while
// the application is healthy (the §4.2.2 watchdog mechanism).
func (s *EchoServer) StartHealthBeats(sm *sim.Simulator, interval time.Duration, beat func()) {
	sim.NewTicker(sm, interval, func() {
		if !s.crashed {
			beat()
		}
	})
}

// CrashCleanup closes every connection (FIN, or RST when abort).
func (s *EchoServer) CrashCleanup(abort bool) {
	s.crashed = true
	if s.tracer != nil {
		s.tracer.Emit(trace.KindAppCrash, s.name, "echo application crashed (cleanup, abort=%v)", abort)
	}
	for c := range s.conns {
		if abort {
			c.Abort()
		} else {
			_ = c.Close()
		}
	}
}

func (s *EchoServer) pump(c *tcp.Conn, st *echoState) {
	if s.crashed {
		return
	}
	buf := make([]byte, 16<<10)
	for {
		// Flush pending echo bytes first to preserve order.
		for len(st.pending) > 0 {
			n, err := c.Write(st.pending)
			if err != nil {
				return
			}
			if n == 0 {
				return // send buffer full; OnWritable resumes
			}
			s.BytesEchoed += int64(n)
			st.pending = st.pending[n:]
		}
		n, err := c.Read(buf)
		if n == 0 {
			if err != nil && c.PeerFINSeen() {
				_ = c.Close() // echo everything, then mirror the close
			}
			return
		}
		st.pending = append(st.pending, buf[:n]...)
	}
}

// EchoClient drives an echo server in ping-pong rounds: it sends a message
// of MsgSize pattern bytes, waits for the full echo, verifies it, and
// repeats — keeping a verifiable, client-driven byte flow in both
// directions.
type EchoClient struct {
	sim    *sim.Simulator
	stack  *tcp.Stack
	tracer *trace.Recorder
	name   string

	service ip.Addr
	port    uint16

	// Rounds is how many ping-pong exchanges to run; MsgSize is the
	// bytes per message.
	Rounds  int
	MsgSize int
	// Gap, when non-zero, inserts a pause between rounds (driven by a
	// timer at the *client*, so server determinism is unaffected).
	Gap time.Duration
	// Telemetry, when non-nil, receives one progress/latency observation
	// per completed round (the inter-round gap is the client-visible
	// response latency).
	Telemetry *telemetry.ClientTrack

	conn *tcp.Conn

	// RoundsDone counts completed verified exchanges.
	RoundsDone int
	// Samples records completion time of each round.
	Samples []ProgressSample
	Done    bool
	Err     error
	// VerifyFailures counts echo mismatches (must stay 0).
	VerifyFailures int64
	// OnDone fires once at completion or failure.
	OnDone func(err error)

	sent     int64 // total bytes sent
	echoed   int64 // total bytes verified
	sendOff  int64 // pattern offset for sending
	writeRem int   // bytes of the current message still to write
	started  time.Time
}

// NewEchoClient builds an echo client.
func NewEchoClient(name string, stack *tcp.Stack, service ip.Addr, port uint16, rounds, msgSize int, tracer *trace.Recorder) *EchoClient {
	return &EchoClient{
		sim:     stack.Sim(),
		stack:   stack,
		tracer:  tracer,
		name:    name,
		service: service,
		port:    port,
		Rounds:  rounds,
		MsgSize: msgSize,
	}
}

// Conn exposes the client's connection (nil before Start).
func (cl *EchoClient) Conn() *tcp.Conn { return cl.conn }

// Start dials and begins the first round.
func (cl *EchoClient) Start() error {
	c, err := cl.stack.Dial(ip.Addr{}, cl.service, cl.port)
	if err != nil {
		return fmt.Errorf("app: %s dial: %w", cl.name, err)
	}
	cl.conn = c
	cl.started = cl.sim.Now()
	c.OnEstablished = func() { cl.sendRound() }
	c.OnWritable = func() { cl.continueSend() }
	c.OnReadable = func() { cl.readable() }
	c.OnClose = func(err error) {
		if cl.Done {
			return
		}
		if err == nil {
			err = fmt.Errorf("app: %s: closed after %d/%d rounds", cl.name, cl.RoundsDone, cl.Rounds)
		}
		cl.finish(err)
	}
	return nil
}

func (cl *EchoClient) sendRound() {
	if cl.Done || cl.RoundsDone >= cl.Rounds {
		return
	}
	cl.writeRem = cl.MsgSize
	cl.continueSend()
}

func (cl *EchoClient) continueSend() {
	if cl.Done || cl.writeRem == 0 || cl.conn == nil {
		return
	}
	chunk := make([]byte, 4096)
	for cl.writeRem > 0 {
		n := len(chunk)
		if n > cl.writeRem {
			n = cl.writeRem
		}
		FillPattern(cl.sendOff, chunk[:n])
		written, err := cl.conn.Write(chunk[:n])
		if err != nil {
			cl.finish(err)
			return
		}
		if written == 0 {
			return
		}
		cl.sendOff += int64(written)
		cl.sent += int64(written)
		cl.writeRem -= written
	}
}

func (cl *EchoClient) readable() {
	if cl.Done || cl.conn == nil {
		return
	}
	buf := make([]byte, 16<<10)
	for {
		n, err := cl.conn.Read(buf)
		if n == 0 {
			if err != nil {
				return
			}
			return
		}
		if bad := VerifyPattern(cl.echoed, buf[:n]); bad >= 0 {
			cl.VerifyFailures++
		}
		cl.echoed += int64(n)
		if cl.echoed >= int64(cl.RoundsDone+1)*int64(cl.MsgSize) {
			cl.RoundsDone++
			now := cl.sim.Now()
			prev := cl.started
			if len(cl.Samples) > 0 {
				prev = cl.Samples[len(cl.Samples)-1].Time
			}
			cl.Telemetry.Deliver(cl.MsgSize, now.Sub(prev))
			cl.Samples = append(cl.Samples, ProgressSample{Time: now, Bytes: cl.echoed})
			if cl.tracer != nil {
				cl.tracer.EmitValue(trace.KindAppProgress, cl.name, cl.echoed, "round %d echoed (%d bytes)", cl.RoundsDone, cl.echoed)
			}
			if cl.RoundsDone >= cl.Rounds {
				_ = cl.conn.Close()
				cl.finish(nil)
				return
			}
			if cl.Gap > 0 {
				cl.sim.Schedule(cl.Gap, cl.sendRound)
			} else {
				cl.sendRound()
			}
		}
	}
}

func (cl *EchoClient) finish(err error) {
	if cl.Done {
		return
	}
	cl.Done = true
	cl.Err = err
	if cl.tracer != nil {
		if err == nil {
			cl.tracer.EmitValue(trace.KindAppDone, cl.name, int64(cl.RoundsDone), "echo client done: %d rounds", cl.RoundsDone)
		} else {
			cl.tracer.Emit(trace.KindAppDone, cl.name, "echo client failed after %d rounds: %v", cl.RoundsDone, err)
		}
	}
	if cl.OnDone != nil {
		cl.OnDone(err)
	}
}

// MaxGap returns the largest interval between consecutive completed rounds.
func (cl *EchoClient) MaxGap() (gap time.Duration, around time.Time) {
	prev := cl.started
	for _, s := range cl.Samples {
		if d := s.Time.Sub(prev); d > gap {
			gap = d
			around = prev.Add(d / 2)
		}
		prev = s.Time
	}
	return gap, around
}
