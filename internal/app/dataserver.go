package app

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/trace"
)

// DataServer implements a minimal request/response file service: the client
// sends a request line "GET <nbytes>\n" and the server streams back exactly
// nbytes of the deterministic pattern, then (optionally) closes its side.
// The request line exercises the client→server direction — and with it the
// backup tap, the hold buffer, and the missed-byte recovery path — while
// the response exercises bulk server→client flow.
//
// The server supports the two application-crash injections of Demo 4:
// CrashSilent stops all socket activity without closing anything (no FIN),
// and CrashCleanup closes every connection (FIN, or RST when abort is
// requested), modelling the OS cleaning up a dead process.
type DataServer struct {
	name   string
	tracer *trace.Recorder

	// CloseAfterServe closes the connection after the response bytes.
	CloseAfterServe bool
	// MaxChunk bounds each Write call (0 means 16 KiB).
	MaxChunk int

	crashedSilent bool
	conns         map[*tcp.Conn]*serveState

	// cpu models scheduler starvation (SetCPU), as on EchoServer.
	cpu *sim.Clock
	sm  *sim.Simulator

	// BytesServed totals response bytes written across connections.
	BytesServed int64
	// RequestsServed counts parsed requests.
	RequestsServed int64
}

type serveState struct {
	reqBuf   strings.Builder
	writeOff int64 // absolute stream offset of the next response byte
	remain   int64 // response bytes still to write
	started  bool
	deferred bool // a starved pump is already scheduled
}

// NewDataServer builds a server; attach it with Accept (typically
// node.OnAccept = server.Accept).
func NewDataServer(name string, tracer *trace.Recorder) *DataServer {
	return &DataServer{
		name:   name,
		tracer: tracer,
		conns:  make(map[*tcp.Conn]*serveState),
	}
}

// Name returns the server's trace name.
func (s *DataServer) Name() string { return s.name }

// SetCPU attaches the host's CPU clock so injected starvation stretches
// this server's processing time. Call before traffic starts.
func (s *DataServer) SetCPU(sm *sim.Simulator, cpu *sim.Clock) {
	s.sm, s.cpu = sm, cpu
}

// schedule runs fn inline at nominal CPU rate, or defers it by the
// starvation stretch, coalescing wakeups per connection.
func (s *DataServer) schedule(st *serveState, fn func()) {
	if s.cpu.Rate() == 1 || s.sm == nil {
		fn()
		return
	}
	if st.deferred {
		return
	}
	st.deferred = true
	s.sm.Schedule(s.cpu.Stretch(procQuantum)-procQuantum, func() {
		st.deferred = false
		fn()
	})
}

// Accept adopts an established connection.
func (s *DataServer) Accept(c *tcp.Conn) {
	st := &serveState{}
	s.conns[c] = st
	c.OnReadable = func() { s.schedule(st, func() { s.readable(c, st) }) }
	c.OnWritable = func() { s.schedule(st, func() { s.writable(c, st) }) }
	c.OnClose = func(error) { delete(s.conns, c) }
	// Data may already be buffered (replica force-established or request
	// segment processed before accept).
	s.readable(c, st)
}

// CrashSilent simulates an application crash without cleanup (§4.2.1): the
// process stops reading and writing but the OS keeps the socket open, so no
// FIN is generated.
func (s *DataServer) CrashSilent() {
	s.crashedSilent = true
	if s.tracer != nil {
		s.tracer.Emit(trace.KindAppCrash, s.name, "application crashed (no cleanup, no FIN)")
	}
}

// CrashCleanup simulates an application crash with OS cleanup (§4.2.2):
// every socket is closed, generating a FIN (or a RST when abort is true).
func (s *DataServer) CrashCleanup(abort bool) {
	s.crashedSilent = true
	if s.tracer != nil {
		s.tracer.Emit(trace.KindAppCrash, s.name, "application crashed (cleanup, abort=%v)", abort)
	}
	for c := range s.conns {
		if abort {
			c.Abort()
		} else {
			_ = c.Close()
		}
	}
}

// Crashed reports whether a crash was injected.
func (s *DataServer) Crashed() bool { return s.crashedSilent }

// StartHealthBeats runs a local timer that calls beat every interval while
// the application is healthy — the application-side half of the §4.2.2
// watchdog mechanism. A purely local timer does not affect replica
// determinism, which constrains only the socket I/O.
func (s *DataServer) StartHealthBeats(sm *sim.Simulator, interval time.Duration, beat func()) {
	sim.NewTicker(sm, interval, func() {
		if !s.crashedSilent {
			beat()
		}
	})
}

// ActiveConns reports the number of live connections.
func (s *DataServer) ActiveConns() int { return len(s.conns) }

func (s *DataServer) readable(c *tcp.Conn, st *serveState) {
	if s.crashedSilent {
		return
	}
	buf := make([]byte, 512)
	for {
		n, err := c.Read(buf)
		if n == 0 || err != nil {
			return
		}
		if st.started {
			continue // drain anything after the request line
		}
		st.reqBuf.Write(buf[:n])
		line := st.reqBuf.String()
		idx := strings.IndexByte(line, '\n')
		if idx < 0 {
			continue
		}
		nbytes, off, err := parseRequest(line[:idx])
		if err != nil {
			c.Abort()
			return
		}
		st.started = true
		st.writeOff = off
		st.remain = nbytes
		s.RequestsServed++
		if s.tracer != nil {
			s.tracer.EmitValue(trace.KindAppProgress, s.name, nbytes, "request for %d bytes on %v", nbytes, c.ID())
		}
		s.writable(c, st)
	}
}

func (s *DataServer) writable(c *tcp.Conn, st *serveState) {
	if s.crashedSilent || !st.started {
		return
	}
	chunkSize := s.MaxChunk
	if chunkSize <= 0 {
		chunkSize = 16 << 10
	}
	chunk := make([]byte, chunkSize)
	for st.remain > 0 {
		n := int64(len(chunk))
		if n > st.remain {
			n = st.remain
		}
		FillPattern(st.writeOff, chunk[:n])
		written, err := c.Write(chunk[:n])
		if err != nil || written == 0 {
			return
		}
		st.writeOff += int64(written)
		st.remain -= int64(written)
		s.BytesServed += int64(written)
	}
	if st.remain == 0 && s.CloseAfterServe {
		st.started = false // single-shot service
		_ = c.Close()
	}
}

// parseRequest parses "GET <nbytes>" or the resuming form
// "GET <nbytes> <offset>" (the offset restarts the pattern mid-stream, so a
// baseline client that reconnects can resume a broken transfer).
func parseRequest(line string) (n, off int64, err error) {
	fields := strings.Fields(line)
	if (len(fields) != 2 && len(fields) != 3) || fields[0] != "GET" {
		return 0, 0, fmt.Errorf("app: malformed request %q", line)
	}
	n, err = strconv.ParseInt(fields[1], 10, 64)
	if err != nil || n < 0 {
		return 0, 0, fmt.Errorf("app: bad byte count %q", fields[1])
	}
	if len(fields) == 3 {
		off, err = strconv.ParseInt(fields[2], 10, 64)
		if err != nil || off < 0 {
			return 0, 0, fmt.Errorf("app: bad offset %q", fields[2])
		}
	}
	return n, off, nil
}

// FormatRequest renders the request line for n bytes.
func FormatRequest(n int64) string { return "GET " + strconv.FormatInt(n, 10) + "\n" }

// FormatResumeRequest renders the request line for n bytes starting at
// pattern offset off.
func FormatResumeRequest(n, off int64) string {
	return "GET " + strconv.FormatInt(n, 10) + " " + strconv.FormatInt(off, 10) + "\n"
}
