package app

import (
	"fmt"
	"time"

	"repro/internal/ip"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// ProgressSample is one observation of the client's download progress —
// the data behind the demo GUI's pie chart.
type ProgressSample struct {
	Time  time.Time
	Bytes int64
}

// StreamClient is the paper's demo client: it connects to the service,
// requests a byte count, verifies every received byte against the
// deterministic pattern, and records a progress time series from which the
// experiments compute failover gaps. A seamless ST-TCP failover shows up
// as an uninterrupted (if briefly stalled) series; a broken connection
// shows up as an error.
type StreamClient struct {
	sim    *sim.Simulator
	stack  *tcp.Stack
	tracer *trace.Recorder
	name   string

	service ip.Addr
	port    uint16

	// Request is how many bytes to ask for.
	Request int64

	conn *tcp.Conn

	// Received counts verified payload bytes.
	Received int64
	// Samples is the progress series (one sample per delivery).
	Samples []ProgressSample
	// Done and Err record completion.
	Done bool
	Err  error
	// VerifyFailures counts pattern mismatches (must stay 0).
	VerifyFailures int64
	// OnDone fires once at completion or failure.
	OnDone func(err error)

	started      time.Time
	finished     time.Time
	readBuf      []byte
	telemetry    *telemetry.ClientTrack
	lastDelivery time.Time
}

// ClientConfig configures a StreamClient. Name, Stack, Service, Port,
// and Request are required; Tracer may be nil.
type ClientConfig struct {
	// Name is the client's trace name ("client/app").
	Name string
	// Stack is the host TCP stack the client dials from.
	Stack *tcp.Stack
	// Service and Port address the ST-TCP service.
	Service ip.Addr
	Port    uint16
	// Request is how many bytes to ask for.
	Request int64
	// Tracer receives progress and completion events; nil disables them.
	Tracer *trace.Recorder
	// Telemetry, when non-nil, receives per-delivery progress and
	// client-visible response latency (the gap between consecutive
	// deliveries — a failover stall shows up as one huge observation).
	Telemetry *telemetry.ClientTrack
}

// NewStreamClient builds a client on the given host TCP stack.
func NewStreamClient(cfg ClientConfig) *StreamClient {
	return &StreamClient{
		sim:       cfg.Stack.Sim(),
		stack:     cfg.Stack,
		tracer:    cfg.Tracer,
		name:      cfg.Name,
		service:   cfg.Service,
		port:      cfg.Port,
		Request:   cfg.Request,
		telemetry: cfg.Telemetry,
	}
}

// Conn exposes the client's TCP connection (nil before Start).
func (cl *StreamClient) Conn() *tcp.Conn { return cl.conn }

// Start dials the service and sends the request.
func (cl *StreamClient) Start() error {
	c, err := cl.stack.Dial(ip.Addr{}, cl.service, cl.port)
	if err != nil {
		return fmt.Errorf("app: %s dial: %w", cl.name, err)
	}
	cl.conn = c
	cl.started = cl.sim.Now()
	req := []byte(FormatRequest(cl.Request))
	c.OnEstablished = func() {
		if _, err := c.Write(req); err != nil {
			cl.finish(err)
		}
	}
	c.OnReadable = func() { cl.readable() }
	c.OnClose = func(err error) {
		if cl.Done {
			return
		}
		if err == nil && cl.Received >= cl.Request {
			cl.finish(nil)
			return
		}
		if err == nil {
			err = fmt.Errorf("app: %s: connection closed after %d/%d bytes", cl.name, cl.Received, cl.Request)
		}
		cl.finish(err)
	}
	return nil
}

func (cl *StreamClient) readable() {
	if cl.Done || cl.conn == nil {
		return
	}
	if cl.readBuf == nil {
		cl.readBuf = make([]byte, 32<<10)
	}
	buf := cl.readBuf
	for {
		n, err := cl.conn.Read(buf)
		if n > 0 {
			if bad := VerifyPattern(cl.Received, buf[:n]); bad >= 0 {
				cl.VerifyFailures++
				if cl.tracer != nil {
					cl.tracer.Emit(trace.KindGeneric, cl.name, "pattern mismatch at offset %d", cl.Received+int64(bad))
				}
			}
			cl.Received += int64(n)
			now := cl.sim.Now()
			var lat time.Duration
			if !cl.lastDelivery.IsZero() {
				lat = now.Sub(cl.lastDelivery)
			} else if !cl.started.IsZero() {
				lat = now.Sub(cl.started)
			}
			cl.lastDelivery = now
			cl.telemetry.Deliver(n, lat)
			cl.Samples = append(cl.Samples, ProgressSample{Time: now, Bytes: cl.Received})
			if cl.tracer != nil {
				cl.tracer.EmitValue(trace.KindAppProgress, cl.name, cl.Received, "received %d bytes", cl.Received)
			}
			if cl.Received >= cl.Request {
				_ = cl.conn.Close()
				cl.finish(nil)
				return
			}
			continue
		}
		if err != nil {
			// End of stream: success only if the full request
			// arrived first.
			if cl.Received >= cl.Request {
				cl.finish(nil)
			} else {
				cl.finish(fmt.Errorf("app: %s: stream ended after %d/%d bytes: %w",
					cl.name, cl.Received, cl.Request, err))
			}
			return
		}
		return
	}
}

func (cl *StreamClient) finish(err error) {
	if cl.Done {
		return
	}
	cl.Done = true
	cl.Err = err
	cl.finished = cl.sim.Now()
	if cl.tracer != nil {
		if err == nil {
			cl.tracer.EmitValue(trace.KindAppDone, cl.name, cl.Received, "received %d bytes in %v", cl.Received, cl.Elapsed())
		} else {
			cl.tracer.Emit(trace.KindAppDone, cl.name, "failed after %d bytes: %v", cl.Received, err)
		}
	}
	if cl.OnDone != nil {
		cl.OnDone(err)
	}
}

// Elapsed is the transfer duration (through completion, or until now).
func (cl *StreamClient) Elapsed() time.Duration {
	end := cl.finished
	if end.IsZero() {
		end = cl.sim.Now()
	}
	return end.Sub(cl.started)
}

// Progress returns the fraction of the request received, in [0, 1] — the
// pie chart's angle.
func (cl *StreamClient) Progress() float64 {
	if cl.Request == 0 {
		return 1
	}
	return float64(cl.Received) / float64(cl.Request)
}

// MaxGap returns the largest interval between consecutive progress samples
// (including from start to the first sample): the client-visible stall a
// failover causes. around reports the midpoint of that gap.
func (cl *StreamClient) MaxGap() (gap time.Duration, around time.Time) {
	prev := cl.started
	if prev.IsZero() && len(cl.Samples) > 0 {
		prev = cl.Samples[0].Time
	}
	for _, s := range cl.Samples {
		if d := s.Time.Sub(prev); d > gap {
			gap = d
			around = prev.Add(d / 2)
		}
		prev = s.Time
	}
	return gap, around
}

// GapAfter returns the stall the client observed around time t: the
// interval between the last delivery at or before t and the first delivery
// after t. It reports false if no delivery followed t.
func (cl *StreamClient) GapAfter(t time.Time) (time.Duration, bool) {
	last := cl.started
	for _, s := range cl.Samples {
		if s.Time.After(t) {
			return s.Time.Sub(last), true
		}
		last = s.Time
	}
	return 0, false
}
