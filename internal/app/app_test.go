package app

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/eth"
	"repro/internal/ip"
	"repro/internal/netem"
	"repro/internal/netstack"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/trace"
)

var (
	addrClient = ip.MakeAddr(10, 0, 0, 1)
	addrServer = ip.MakeAddr(10, 0, 0, 2)
)

type fixture struct {
	sim    *sim.Simulator
	client *tcp.Stack
	server *tcp.Stack
	tracer *trace.Recorder
}

func newFixture(t *testing.T, seed int64) *fixture {
	t.Helper()
	s := sim.New(seed)
	tracer := trace.NewRecorder(s.Now)
	link := netem.NewLink(s, netem.DefaultLANConfig())
	nicC := netem.NewNIC(s, "client/eth0", eth.MakeAddr(1))
	nicS := netem.NewNIC(s, "server/eth0", eth.MakeAddr(2))
	link.Attach(nicC, nicS)
	nicC.AttachToLink(link, true)
	nicS.AttachToLink(link, false)
	nsC := netstack.New(s, "client", nicC, addrClient)
	nsS := netstack.New(s, "server", nicS, addrServer)
	return &fixture{
		sim:    s,
		client: tcp.NewStack(s, nsC, "client", tcp.Options{}, tracer, nil),
		server: tcp.NewStack(s, nsS, "server", tcp.Options{}, tracer, nil),
		tracer: tracer,
	}
}

func TestPatternDeterministicAndVerifiable(t *testing.T) {
	a := make([]byte, 1000)
	b := make([]byte, 1000)
	FillPattern(500, a)
	FillPattern(500, b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("pattern not deterministic")
		}
	}
	if VerifyPattern(500, a) != -1 {
		t.Fatal("correct pattern failed verification")
	}
	a[123] ^= 0xff
	if VerifyPattern(500, a) != 123 {
		t.Fatalf("corruption index = %d, want 123", VerifyPattern(500, a))
	}
}

// TestPatternSplitProperty: the pattern is position-determined, so any
// split of the stream fills identically.
func TestPatternSplitProperty(t *testing.T) {
	fn := func(off int64, split uint8, n uint8) bool {
		size := int(n) + 1
		s := int(split) % size
		whole := make([]byte, size)
		FillPattern(off, whole)
		a := make([]byte, s)
		b := make([]byte, size-s)
		FillPattern(off, a)
		FillPattern(off+int64(s), b)
		return VerifyPattern(off, append(a, b...)) == -1 && VerifyPattern(off, whole) == -1
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDataServerServesRequest(t *testing.T) {
	f := newFixture(t, 1)
	srv := NewDataServer("server/app", f.tracer)
	l, err := f.server.Listen(addrServer, 80)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	l.OnEstablished = srv.Accept

	const size = 256 << 10
	cl := NewStreamClient(ClientConfig{
		Name: "client/app", Stack: f.client,
		Service: addrServer, Port: 80,
		Request: size, Tracer: f.tracer,
	})
	if err := cl.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	_ = f.sim.Run(time.Minute)
	if !cl.Done || cl.Err != nil {
		t.Fatalf("client: done=%v err=%v", cl.Done, cl.Err)
	}
	if cl.Received != size || cl.VerifyFailures != 0 {
		t.Fatalf("received=%d verifyFailures=%d", cl.Received, cl.VerifyFailures)
	}
	if srv.RequestsServed != 1 || srv.BytesServed != size {
		t.Fatalf("server: requests=%d bytes=%d", srv.RequestsServed, srv.BytesServed)
	}
	if cl.Progress() != 1 {
		t.Fatalf("progress = %f", cl.Progress())
	}
	if len(cl.Samples) == 0 {
		t.Fatal("no progress samples recorded")
	}
}

func TestDataServerResumeOffset(t *testing.T) {
	f := newFixture(t, 2)
	srv := NewDataServer("server/app", f.tracer)
	l, _ := f.server.Listen(addrServer, 80)
	l.OnEstablished = srv.Accept

	// Request bytes [5000, 7000) of the pattern directly.
	c, err := f.client.Dial(ip.Addr{}, addrServer, 80)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	var got []byte
	c.OnEstablished = func() { _, _ = c.Write([]byte(FormatResumeRequest(2000, 5000))) }
	c.OnReadable = func() {
		buf := make([]byte, 4096)
		for {
			n, _ := c.Read(buf)
			if n == 0 {
				return
			}
			got = append(got, buf[:n]...)
		}
	}
	_ = f.sim.Run(time.Minute)
	if len(got) != 2000 {
		t.Fatalf("got %d bytes", len(got))
	}
	if VerifyPattern(5000, got) != -1 {
		t.Fatal("resumed bytes do not match the pattern at the offset")
	}
}

func TestDataServerRejectsMalformedRequest(t *testing.T) {
	f := newFixture(t, 3)
	srv := NewDataServer("server/app", f.tracer)
	l, _ := f.server.Listen(addrServer, 80)
	l.OnEstablished = srv.Accept
	c, err := f.client.Dial(ip.Addr{}, addrServer, 80)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	reset := false
	c.OnEstablished = func() { _, _ = c.Write([]byte("EAT -5 bananas\n")) }
	c.OnClose = func(err error) { reset = err != nil }
	_ = f.sim.Run(5 * time.Second)
	if !reset {
		t.Fatal("malformed request was not rejected with a reset")
	}
	if srv.RequestsServed != 0 {
		t.Fatal("malformed request counted as served")
	}
}

func TestDataServerCrashSilentStopsActivity(t *testing.T) {
	f := newFixture(t, 4)
	srv := NewDataServer("server/app", f.tracer)
	l, _ := f.server.Listen(addrServer, 80)
	l.OnEstablished = srv.Accept
	cl := NewStreamClient(ClientConfig{
		Name: "client/app", Stack: f.client,
		Service: addrServer, Port: 80,
		Request: 64 << 20, Tracer: f.tracer,
	})
	_ = cl.Start()
	_ = f.sim.Run(500 * time.Millisecond)
	srv.CrashSilent()
	mark := cl.Received
	if mark == 0 {
		t.Fatal("no data before crash")
	}
	_ = f.sim.Run(5 * time.Second)
	// A little in-flight data may still land, but the stream must stall
	// far short of completion.
	if cl.Received > mark+(512<<10) {
		t.Fatalf("server kept serving after silent crash: %d → %d", mark, cl.Received)
	}
	if cl.Done {
		t.Fatal("transfer completed despite crash")
	}
	if !srv.Crashed() {
		t.Fatal("crash flag not set")
	}
}

func TestDataServerCrashCleanupClosesConns(t *testing.T) {
	f := newFixture(t, 5)
	srv := NewDataServer("server/app", f.tracer)
	l, _ := f.server.Listen(addrServer, 80)
	l.OnEstablished = srv.Accept
	cl := NewStreamClient(ClientConfig{
		Name: "client/app", Stack: f.client,
		Service: addrServer, Port: 80,
		Request: 64 << 20, Tracer: f.tracer,
	})
	_ = cl.Start()
	_ = f.sim.Run(500 * time.Millisecond)
	if srv.ActiveConns() != 1 {
		t.Fatalf("active conns = %d", srv.ActiveConns())
	}
	srv.CrashCleanup(false)
	_ = f.sim.Run(5 * time.Second)
	if !cl.Done || cl.Err == nil {
		t.Fatalf("client did not observe the early close: done=%v err=%v", cl.Done, cl.Err)
	}
}

func TestEchoPingPong(t *testing.T) {
	f := newFixture(t, 6)
	srv := NewEchoServer("server/app", f.tracer)
	l, _ := f.server.Listen(addrServer, 80)
	l.OnEstablished = srv.Accept
	cl := NewEchoClient("client/app", f.client, addrServer, 80, 50, 2048, f.tracer)
	if err := cl.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	_ = f.sim.Run(time.Minute)
	if !cl.Done || cl.Err != nil {
		t.Fatalf("echo client: done=%v err=%v rounds=%d", cl.Done, cl.Err, cl.RoundsDone)
	}
	if cl.RoundsDone != 50 || cl.VerifyFailures != 0 {
		t.Fatalf("rounds=%d verifyFailures=%d", cl.RoundsDone, cl.VerifyFailures)
	}
	if srv.BytesEchoed != 50*2048 {
		t.Fatalf("echoed %d bytes", srv.BytesEchoed)
	}
}

func TestEchoClientGapPacing(t *testing.T) {
	f := newFixture(t, 7)
	srv := NewEchoServer("server/app", f.tracer)
	l, _ := f.server.Listen(addrServer, 80)
	l.OnEstablished = srv.Accept
	cl := NewEchoClient("client/app", f.client, addrServer, 80, 10, 100, f.tracer)
	cl.Gap = 50 * time.Millisecond
	_ = cl.Start()
	_ = f.sim.Run(time.Minute)
	if !cl.Done || cl.Err != nil {
		t.Fatalf("done=%v err=%v", cl.Done, cl.Err)
	}
	// 10 rounds with 9 gaps of 50ms: at least 450ms of virtual time.
	first := cl.Samples[0].Time
	last := cl.Samples[len(cl.Samples)-1].Time
	if d := last.Sub(first); d < 9*50*time.Millisecond {
		t.Fatalf("rounds completed in %v, pacing ignored", d)
	}
}

func TestMaxGapComputation(t *testing.T) {
	f := newFixture(t, 8)
	cl := NewStreamClient(ClientConfig{
		Name: "c", Stack: f.client,
		Service: addrServer, Port: 80,
		Request: 100, Tracer: f.tracer,
	})
	base := f.sim.Now()
	cl.Samples = []ProgressSample{
		{Time: base.Add(100 * time.Millisecond), Bytes: 10},
		{Time: base.Add(200 * time.Millisecond), Bytes: 20},
		{Time: base.Add(1200 * time.Millisecond), Bytes: 30}, // 1s gap
		{Time: base.Add(1300 * time.Millisecond), Bytes: 40},
	}
	gap, around := cl.MaxGap()
	if gap != time.Second {
		t.Fatalf("gap = %v", gap)
	}
	if around.Before(base.Add(200*time.Millisecond)) || around.After(base.Add(1200*time.Millisecond)) {
		t.Fatalf("around = %v outside the gap", around)
	}
	g, ok := cl.GapAfter(base.Add(250 * time.Millisecond))
	if !ok || g != time.Second {
		t.Fatalf("GapAfter = %v, %v", g, ok)
	}
}
