package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// schedulerKinds are the concrete implementations every differential test
// runs against.
var schedulerKinds = []SchedulerKind{SchedulerHeap, SchedulerCalendar}

// runWorkload drives one simulator through a randomized timer-heavy
// workload — self-re-arming timers with jittered periods, cross-timer
// stops and re-arms, pooled Post chains, and bursts of same-instant
// events — and returns the exact firing trace. The workload draws all
// randomness from the simulator's own seeded source, so two simulators
// with the same seed see byte-identical schedules regardless of which
// Scheduler backs them.
func runWorkload(s *Simulator, horizon time.Duration) []string {
	var trace []string
	rng := s.Rand()
	record := func(label string) {
		trace = append(trace, fmt.Sprintf("%d %s", s.Elapsed(), label))
	}

	const nTimers = 40
	timers := make([]*Timer, nTimers)
	for i := 0; i < nTimers; i++ {
		i := i
		timers[i] = s.NewTimer(func() {
			record(fmt.Sprintf("timer%d", i))
			// Re-arm with a jittered period spanning ns to ms scales, so
			// events land across many calendar buckets and in overflow.
			delay := time.Duration(rng.Int63n(int64(5 * time.Millisecond)))
			timers[i].Arm(delay)
			// Occasionally meddle with a random peer: half stops, half
			// forced re-arms — both exercise lazy cancellation.
			switch rng.Intn(10) {
			case 0:
				timers[rng.Intn(nTimers)].Stop()
			case 1:
				timers[rng.Intn(nTimers)].Arm(time.Duration(rng.Int63n(int64(time.Millisecond))))
			case 2:
				// Same-instant burst: FIFO order must hold across backends.
				for k := 0; k < 3; k++ {
					k := k
					s.Post(0, func() { record(fmt.Sprintf("burst%d.%d", i, k)) })
				}
			case 3:
				// A pooled chain two hops deep.
				s.Post(time.Duration(rng.Int63n(int64(100*time.Microsecond))), func() {
					record(fmt.Sprintf("chain%d", i))
					s.Post(time.Duration(rng.Int63n(int64(10*time.Microsecond))), func() {
						record(fmt.Sprintf("chain%d'", i))
					})
				})
			case 4:
				// A cancellable one-shot that is usually cancelled at a
				// later, random moment.
				ev := s.Schedule(time.Duration(rng.Int63n(int64(2*time.Millisecond))), func() {
					record(fmt.Sprintf("oneshot%d", i))
				})
				if rng.Intn(3) > 0 {
					s.Post(time.Duration(rng.Int63n(int64(time.Millisecond))), func() { s.Cancel(ev) })
				}
			}
		})
		timers[i].Arm(time.Duration(rng.Int63n(int64(time.Millisecond))))
	}
	// A sparse far-future layer to stress the calendar's overflow tier.
	for i := 0; i < 8; i++ {
		i := i
		s.Schedule(time.Duration(i+1)*horizon/10, func() { record(fmt.Sprintf("far%d", i)) })
	}
	if err := s.Run(horizon); err != nil {
		trace = append(trace, "ERR "+err.Error())
	}
	return trace
}

// TestSchedulerDifferential is the determinism proof for the pluggable
// scheduler API: for each seed, the heap and calendar backends must
// produce byte-identical firing traces for the same workload.
func TestSchedulerDifferential(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		traces := make(map[SchedulerKind][]string)
		for _, kind := range schedulerKinds {
			s := NewWithConfig(Config{Seed: seed, Scheduler: kind})
			if got := s.SchedulerKind(); got != kind {
				t.Fatalf("seed %d: SchedulerKind() = %v, want %v", seed, got, kind)
			}
			traces[kind] = runWorkload(s, 200*time.Millisecond)
		}
		ref := traces[SchedulerHeap]
		if len(ref) == 0 {
			t.Fatalf("seed %d: workload fired no events", seed)
		}
		for _, kind := range schedulerKinds[1:] {
			got := traces[kind]
			if len(got) != len(ref) {
				t.Fatalf("seed %d: %v fired %d events, heap fired %d", seed, kind, len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("seed %d: traces diverge at event %d: heap=%q %v=%q", seed, i, ref[i], kind, got[i])
				}
			}
		}
	}
}

// TestSchedulerDifferentialRawOps drives both backends directly through
// the Scheduler interface with a random schedule/cancel/pop mix —
// independent of the Simulator loop — and checks identical pop
// sequences. This catches ordering bugs the simulator-level workload
// might mask (it never interleaves pops between schedules the way the
// run loop does).
func TestSchedulerDifferentialRawOps(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		popped := make(map[SchedulerKind][]uint64)
		for _, kind := range schedulerKinds {
			rng := rand.New(rand.NewSource(seed)) //sttcp:allow simdeterminism test-local fixed-seed source
			sched := newScheduler(kind)
			var lives []*Event
			var now int64
			var seq uint64
			for op := 0; op < 20_000; op++ {
				switch r := rng.Intn(10); {
				case r < 5: // schedule
					e := &Event{when: now + rng.Int63n(int64(10*time.Millisecond)), seq: seq, live: true}
					seq++
					sched.Schedule(e)
					lives = append(lives, e)
				case r < 7 && len(lives) > 0: // cancel a random live event
					i := rng.Intn(len(lives))
					e := lives[i]
					lives[i] = lives[len(lives)-1]
					lives = lives[:len(lives)-1]
					e.live = false
					e.gen++
					sched.Cancel(e)
				default: // pop
					e := sched.Pop()
					if e == nil {
						continue
					}
					if e.when < now {
						t.Fatalf("seed %d %v: pop went backwards: %d < %d", seed, kind, e.when, now)
					}
					now = e.when
					e.live = false
					e.gen++
					popped[kind] = append(popped[kind], e.seq)
					for i, l := range lives {
						if l == e {
							lives[i] = lives[len(lives)-1]
							lives = lives[:len(lives)-1]
							break
						}
					}
				}
			}
			// Drain what remains.
			for {
				e := sched.Pop()
				if e == nil {
					break
				}
				e.live = false
				e.gen++
				popped[kind] = append(popped[kind], e.seq)
			}
			if sched.Len() != 0 {
				t.Fatalf("seed %d %v: Len() = %d after drain", seed, kind, sched.Len())
			}
		}
		ref := popped[SchedulerHeap]
		for _, kind := range schedulerKinds[1:] {
			got := popped[kind]
			if len(got) != len(ref) {
				t.Fatalf("seed %d: %v popped %d, heap popped %d", seed, kind, len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("seed %d: pop order diverges at %d: heap=seq%d %v=seq%d", seed, i, ref[i], kind, got[i])
				}
			}
		}
	}
}

// TestCalendarOverflowReanchor forces the overflow → reanchor path:
// events far beyond the initial ring span must still fire in exact
// order, across several re-anchors with very different densities.
func TestCalendarOverflowReanchor(t *testing.T) {
	s := NewWithConfig(Config{Scheduler: SchedulerCalendar})
	var got []int
	// Dense microsecond cluster now, a sparse cluster an hour out, and a
	// second dense cluster a day out — three re-anchors at three widths.
	want := make([]int, 0, 300)
	id := 0
	add := func(base time.Duration, step time.Duration, n int) {
		for i := 0; i < n; i++ {
			v := id
			id++
			s.Schedule(base+time.Duration(i)*step, func() { got = append(got, v) })
			want = append(want, v)
		}
	}
	add(0, time.Microsecond, 100)
	add(time.Hour, time.Second, 100)
	add(24*time.Hour, 10*time.Microsecond, 100)
	if err := s.Run(25 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: fired id %d, want %d", i, got[i], want[i])
		}
	}
}

// TestCalendarRewind covers the one legal way an insert can precede the
// ring: a run stops at a deadline short of a re-anchored ring, then new
// work is scheduled in the gap.
func TestCalendarRewind(t *testing.T) {
	s := NewWithConfig(Config{Scheduler: SchedulerCalendar})
	var got []string
	s.Schedule(time.Hour, func() { got = append(got, "far") })
	// Run to a deadline before the event: forces a Peek (which re-anchors
	// the ring at t=1h) and leaves the clock at 30m.
	if err := s.Run(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if s.Elapsed() != 30*time.Minute {
		t.Fatalf("clock at %v, want 30m", s.Elapsed())
	}
	// This deadline is before curStart: Schedule must rewind the ring.
	s.Schedule(time.Minute, func() { got = append(got, "near") })
	if err := s.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "near" || got[1] != "far" {
		t.Fatalf("fired %v, want [near far]", got)
	}
}

// TestCalendarRewindKeepsOverflowOrdered is the regression test for a
// rewind that strands spilled entries in overflow: two far events land in
// the ring at re-anchor, a rewind spills them back out, and the new
// ringEnd splits them — one inside the new window, one beyond. The inside
// one must be dealt back into the ring, or a later-scheduled ring entry
// with a later deadline fires first (the bug surfaced as a demo2 client
// crawling through retransmission backoff for 500+ virtual seconds).
func TestCalendarRewindKeepsOverflowOrdered(t *testing.T) {
	s := NewWithConfig(Config{Scheduler: SchedulerCalendar})
	var got []string
	// Two sparse far events: at re-anchor the fitted width is clamped to
	// calMaxWidth, giving the ring a ~10.7s span that covers both.
	s.Schedule(100*time.Second, func() { got = append(got, "far1") })
	s.Schedule(110*time.Second, func() { got = append(got, "far2") })
	// Stop short of both: the Peek re-anchors the ring at t=100s.
	if err := s.Run(90 * time.Second); err != nil {
		t.Fatal(err)
	}
	// 95s precedes curStart: rewind. The spilled far1 (100s) is inside
	// the new [95s, ~105.7s) window and must come back into the ring;
	// far2 (110s) is beyond it and legitimately stays in overflow.
	s.Schedule(5*time.Second, func() { got = append(got, "early") })
	// A ring entry later than far1 (102s) but inside the window: with the
	// stranding bug it fired first.
	s.Schedule(12*time.Second, func() { got = append(got, "mid") })
	if err := s.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	want := []string{"early", "far1", "mid", "far2"}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

// TestCalendarCompaction checks that mass cancellation triggers
// compaction and leaves survivors firing in order.
func TestCalendarCompaction(t *testing.T) {
	s := NewWithConfig(Config{Scheduler: SchedulerCalendar})
	var events []*Event
	var got []int
	for i := 0; i < 2000; i++ {
		i := i
		events = append(events, s.Schedule(time.Duration(i)*time.Microsecond, func() { got = append(got, i) }))
	}
	// Cancel all but every 100th: tombstones outnumber live 100:1, far
	// past the 4:1 compaction threshold.
	for i, ev := range events {
		if i%100 != 0 {
			s.Cancel(ev)
		}
	}
	if pending := s.Pending(); pending != 20 {
		t.Fatalf("Pending() = %d after mass cancel, want 20", pending)
	}
	if err := s.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("fired %d events, want 20", len(got))
	}
	for i := range got {
		if got[i] != i*100 {
			t.Fatalf("event %d: fired id %d, want %d", i, got[i], i*100)
		}
	}
}

// steadyStateAllocs measures allocations per re-arm/fire cycle once the
// scheduler has reached steady state for a timer-heavy workload.
func steadyStateAllocs(t *testing.T, kind SchedulerKind) float64 {
	t.Helper()
	s := NewWithConfig(Config{Scheduler: kind})
	const nTimers = 64
	timers := make([]*Timer, nTimers)
	period := 100 * time.Microsecond
	for i := range timers {
		i := i
		timers[i] = s.NewTimer(func() {
			timers[i].Arm(period) // fired path: re-arm
			// cancelled path: the neighbour's pending arming becomes a
			// tombstone and is immediately replaced.
			timers[(i+1)%nTimers].Arm(period + time.Duration(i))
		})
		timers[i].Arm(time.Duration(i) * time.Microsecond)
	}
	// Warm up: grow buckets/heap/pools to their steady-state capacity.
	if err := s.Run(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	return testing.AllocsPerRun(100, func() {
		if err := s.Run(time.Millisecond); err != nil {
			t.Fatal(err)
		}
	})
}

// TestHeapSteadyStateAllocs is the audit backing the //sttcp:allow
// hotpathalloc directives in heapq.go: once warm, the heap's re-arm/
// fire/cancel cycle must not allocate.
func TestHeapSteadyStateAllocs(t *testing.T) {
	if allocs := steadyStateAllocs(t, SchedulerHeap); allocs != 0 {
		t.Fatalf("heap steady state allocates %v per run, want 0", allocs)
	}
}

// TestCalendarSteadyStateAllocs is the audit backing the //sttcp:allow
// hotpathalloc directives in calendar.go: once warm, the calendar's
// re-arm/fire/cancel cycle — including bucket advancement and
// re-anchoring — must not allocate.
func TestCalendarSteadyStateAllocs(t *testing.T) {
	if allocs := steadyStateAllocs(t, SchedulerCalendar); allocs != 0 {
		t.Fatalf("calendar steady state allocates %v per run, want 0", allocs)
	}
}

// TestParseSchedulerKind pins the command-line surface.
func TestParseSchedulerKind(t *testing.T) {
	cases := []struct {
		in   string
		want SchedulerKind
		ok   bool
	}{
		{"", SchedulerDefault, true},
		{"default", SchedulerDefault, true},
		{"heap", SchedulerHeap, true},
		{"calendar", SchedulerCalendar, true},
		{"ladder", SchedulerDefault, false},
	}
	for _, c := range cases {
		got, err := ParseSchedulerKind(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParseSchedulerKind(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
	var k SchedulerKind
	if err := k.Set("calendar"); err != nil || k != SchedulerCalendar {
		t.Errorf("Set(calendar) = %v, kind %v", err, k)
	}
	if k.String() != "calendar" {
		t.Errorf("String() = %q, want calendar", k.String())
	}
	if SchedulerDefault.String() != "heap" {
		t.Errorf("default String() = %q, want heap", SchedulerDefault.String())
	}
}
