package sim

import (
	"testing"
	"time"
)

func TestTimerFiresOnce(t *testing.T) {
	s := New(1)
	var fired int
	tm := s.NewTimer(func() { fired++ })
	tm.Arm(100 * time.Millisecond)
	if !tm.Armed() {
		t.Fatal("timer should be armed")
	}
	if err := s.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if tm.Armed() {
		t.Fatal("timer should not be armed after firing")
	}
}

func TestTimerRearmReplacesPending(t *testing.T) {
	s := New(1)
	var at []time.Duration
	tm := s.NewTimer(func() { at = append(at, s.Elapsed()) })
	tm.Arm(100 * time.Millisecond)
	tm.Arm(300 * time.Millisecond) // replaces the 100ms arming
	if err := s.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(at) != 1 || at[0] != 300*time.Millisecond {
		t.Fatalf("fire times = %v, want [300ms]", at)
	}
}

func TestTimerRearmAfterFire(t *testing.T) {
	s := New(1)
	var fired int
	var tm *Timer
	tm = s.NewTimer(func() {
		fired++
		if fired < 3 {
			tm.Arm(10 * time.Millisecond)
		}
	})
	tm.Arm(10 * time.Millisecond)
	if err := s.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if fired != 3 {
		t.Fatalf("fired = %d, want 3", fired)
	}
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	var fired int
	tm := s.NewTimer(func() { fired++ })
	tm.Arm(100 * time.Millisecond)
	tm.Stop()
	if tm.Armed() {
		t.Fatal("timer should not be armed after Stop")
	}
	tm.Stop() // idempotent
	if err := s.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatalf("fired = %d, want 0", fired)
	}
	// A stopped timer can be re-armed.
	tm.Arm(50 * time.Millisecond)
	if err := s.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d after re-arm, want 1", fired)
	}
}

func TestTimerOrderingMatchesScheduleFIFO(t *testing.T) {
	// A timer armed after a Schedule at the same instant fires after it, and
	// re-arming refreshes the sequence number, so FIFO order is preserved.
	s := New(1)
	var order []string
	tm := s.NewTimer(func() { order = append(order, "timer") })
	tm.Arm(time.Millisecond)
	s.Schedule(time.Millisecond, func() { order = append(order, "sched") })
	tm.Arm(time.Millisecond) // re-arm moves the timer behind the Schedule
	if err := s.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "sched" || order[1] != "timer" {
		t.Fatalf("order = %v, want [sched timer]", order)
	}
}

func TestTimerCapturesContextAtArm(t *testing.T) {
	s := New(1)
	var seen uint64
	tm := s.NewTimer(func() { seen = s.Context() })
	s.SetContext(7)
	tm.Arm(time.Millisecond)
	s.SetContext(0)
	if err := s.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if seen != 7 {
		t.Fatalf("context inside callback = %d, want 7", seen)
	}
}

func TestTimerArmDoesNotAllocate(t *testing.T) {
	s := New(1)
	tm := s.NewTimer(func() {})
	tm.Arm(time.Millisecond)
	if err := s.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tm.Arm(time.Millisecond)
		s.Step()
	})
	if allocs != 0 {
		t.Fatalf("Arm+fire allocates %v times per cycle, want 0", allocs)
	}
}

func TestPostRunsInOrder(t *testing.T) {
	s := New(1)
	var order []int
	s.Post(2*time.Millisecond, func() { order = append(order, 2) })
	s.Post(time.Millisecond, func() { order = append(order, 1) })
	s.Post(2*time.Millisecond, func() { order = append(order, 3) })
	if err := s.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
}

func TestPostRecyclesEvents(t *testing.T) {
	s := New(1)
	// Prime the pool: one pooled event fires and is recycled.
	s.Post(0, func() {})
	s.Step()
	allocs := testing.AllocsPerRun(1000, func() {
		s.Post(0, func() {})
		s.Step()
	})
	if allocs != 0 {
		t.Fatalf("Post+fire allocates %v times per cycle, want 0", allocs)
	}
}

func TestPostFromWithinPost(t *testing.T) {
	// A Post callback may immediately Post again; the recycled event is safe
	// to reuse inside the callback that just fired from it.
	s := New(1)
	var fired int
	var chain func()
	chain = func() {
		fired++
		if fired < 5 {
			s.Post(time.Millisecond, chain)
		}
	}
	s.Post(time.Millisecond, chain)
	if err := s.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if fired != 5 {
		t.Fatalf("fired = %d, want 5", fired)
	}
}

func TestPostDeterministicAgainstSchedule(t *testing.T) {
	// Interleaved Post and Schedule at equal timestamps keep global FIFO
	// order: both draw seq from the same counter.
	s := New(1)
	var order []int
	s.Post(time.Millisecond, func() { order = append(order, 0) })
	s.Schedule(time.Millisecond, func() { order = append(order, 1) })
	s.Post(time.Millisecond, func() { order = append(order, 2) })
	if err := s.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if i != v {
			t.Fatalf("order = %v, want [0 1 2]", order)
		}
	}
}

func TestTickerDoesNotAllocatePerTick(t *testing.T) {
	s := New(1)
	tk := NewTicker(s, time.Millisecond, func() {})
	s.Run(10 * time.Millisecond) // settle
	allocs := testing.AllocsPerRun(1000, func() {
		s.Step()
	})
	if allocs != 0 {
		t.Fatalf("ticker allocates %v times per tick, want 0", allocs)
	}
	tk.Stop()
}
