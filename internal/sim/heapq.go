package sim

// heapScheduler is the reference Scheduler: a binary min-heap of entries
// ordered by (when, seq). Cancellation is lazy — tombstones are skipped
// when they surface at the root, and the whole heap is compacted once
// tombstones outnumber live entries — so Cancel is O(1) instead of the
// O(log n) sift that heap.Remove used to pay on every timer re-arm.
type heapScheduler struct {
	q    []entry
	dead int // tombstones still buried in q
}

func (h *heapScheduler) Kind() SchedulerKind { return SchedulerHeap }

func (h *heapScheduler) Len() int { return len(h.q) - h.dead }

//sttcp:hotpath
func (h *heapScheduler) Schedule(e *Event) {
	//sttcp:allow hotpathalloc amortized heap growth; steady state reuses capacity (TestHeapSteadyStateAllocs)
	h.q = append(h.q, entry{when: e.when, seq: e.seq, gen: e.gen, ev: e})
	h.up(len(h.q) - 1)
}

//sttcp:hotpath
func (h *heapScheduler) Cancel(e *Event) {
	h.dead++
	if h.dead > 64 && h.dead > len(h.q)-h.dead {
		h.compact() //sttcp:allow hotpathalloc amortized tombstone compaction reuses the heap backing array
	}
}

func (h *heapScheduler) Peek() *Event {
	for len(h.q) > 0 {
		if !h.q[0].stale() {
			return h.q[0].ev
		}
		h.removeTop()
		h.dead--
	}
	return nil
}

//sttcp:hotpath
func (h *heapScheduler) Pop() *Event {
	for len(h.q) > 0 {
		en := h.q[0]
		h.removeTop()
		if en.stale() {
			h.dead--
			continue
		}
		return en.ev
	}
	return nil
}

// compact drops every tombstone and rebuilds the heap in O(n).
func (h *heapScheduler) compact() {
	keep := h.q[:0]
	for _, en := range h.q {
		if !en.stale() {
			keep = append(keep, en)
		}
	}
	for i := len(keep); i < len(h.q); i++ {
		h.q[i] = entry{} // release stale *Event pointers
	}
	h.q = keep
	h.dead = 0
	for i := len(h.q)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

//sttcp:hotpath
func (h *heapScheduler) removeTop() {
	n := len(h.q) - 1
	h.q[0] = h.q[n]
	h.q[n] = entry{}
	h.q = h.q[:n]
	if n > 0 {
		h.down(0)
	}
}

//sttcp:hotpath
func (h *heapScheduler) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.q[i].less(h.q[parent]) {
			break
		}
		h.q[i], h.q[parent] = h.q[parent], h.q[i]
		i = parent
	}
}

//sttcp:hotpath
func (h *heapScheduler) down(i int) {
	n := len(h.q)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && h.q[right].less(h.q[left]) {
			least = right
		}
		if !h.q[least].less(h.q[i]) {
			break
		}
		h.q[i], h.q[least] = h.q[least], h.q[i]
		i = least
	}
}
