// Package sim implements a deterministic discrete-event simulator.
//
// Everything in this repository — links, NICs, TCP stacks, heartbeat timers,
// applications — runs on one single-threaded event loop driven by a virtual
// clock. A simulation run is completely determined by its seed and the order
// in which events are scheduled, which makes every experiment reproducible
// bit-for-bit. No component inside a simulation may use the real clock or
// spawn goroutines.
//
// Event storage is pluggable: the Scheduler interface has a reference
// binary-heap implementation and a calendar queue tuned for timer-heavy
// workloads, selected by Config.Scheduler. Both yield the exact same event
// order for the same run (see DESIGN.md "Scheduler architecture").
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Epoch is the virtual time at which every simulation starts. The concrete
// date is arbitrary; only durations relative to Epoch are meaningful.
var Epoch = time.Date(2005, time.June, 28, 0, 0, 0, 0, time.UTC)

// ErrStopped is returned by Run when the simulation was stopped explicitly
// via Stop rather than by reaching its horizon or draining its event queue.
var ErrStopped = errors.New("sim: stopped")

// Event is a scheduled callback. It is created by Schedule/At and can be
// cancelled until it fires.
//
// An Event may be re-scheduled after it fires or is cancelled (that is how
// Timer re-arms without allocating). Cancellation is lazy: the queue entry
// becomes a tombstone, detected by the generation counter, and is reclaimed
// when it surfaces or when the scheduler compacts.
type Event struct {
	when   int64 // virtual time, nanoseconds since Epoch
	seq    uint64
	fn     func()
	ctx    uint64 // causal context captured at schedule time
	gen    uint32 // bumped on cancel and fire; queue entries snapshot it
	live   bool   // a current-generation entry is in the queue
	pooled bool   // created by Post/PostAt; recycled after firing
	daemon bool   // background event: does not keep Run alive (see NewDaemonTicker)
}

// When reports the virtual time at which the event will fire.
func (e *Event) When() time.Time { return Epoch.Add(time.Duration(e.when)) }

// SchedKey reports the (virtual time, sequence) key the event is ordered
// by: nanoseconds since Epoch and the simulator-unique sequence number.
// It exists for Scheduler implementations outside this package (injected
// via Config.Custom), which must order pops by exactly this key — except
// that entries sharing whenNS may be permuted, which is the explorer's
// whole license to fork.
func (e *Event) SchedKey() (whenNS int64, seq uint64) { return e.when, e.seq }

// CausalContext reports the ambient causal context captured when the
// event was scheduled (a trace span ID, or zero for none). Scheduler
// wrappers use it to judge whether two same-timestamp events touch
// disjoint components and therefore commute.
func (e *Event) CausalContext() uint64 { return e.ctx }

// Cancelled reports whether the event has been cancelled or already fired.
func (e *Event) Cancelled() bool { return !e.live }

// Simulator is a deterministic discrete-event scheduler. The zero value is
// not usable; construct with New or NewWithConfig.
type Simulator struct {
	now     time.Time
	nowNS   int64 // now as nanoseconds since Epoch (the scheduler's key space)
	sched   Scheduler
	seq     uint64
	rng     *rand.Rand
	stopped bool
	running bool
	fired   uint64
	ctx     uint64
	fg      int      // live non-daemon events in the queue
	free    []*Event // recycled Post/PostAt events
}

// NewRand returns a deterministic random source derived from seed. It is
// the single audited construction point for randomness in sim-driven code
// (see DESIGN.md "Determinism contract"): every component draws either
// from the simulator's own source (Rand) or from a *rand.Rand built here,
// so one seed determines the entire run and sttcp-vet's simdeterminism
// analyzer can forbid rand construction everywhere else.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) //sttcp:allow simdeterminism this is the audited seeding point itself
}

// New returns a simulator whose clock reads Epoch, whose random source is
// seeded with seed, and whose event queue is the default scheduler.
func New(seed int64) *Simulator {
	return NewWithConfig(Config{Seed: seed})
}

// NewWithConfig returns a simulator built from cfg: clock at Epoch, random
// source seeded with cfg.Seed, event queue per cfg.Scheduler (or
// cfg.Custom verbatim when one is injected).
func NewWithConfig(cfg Config) *Simulator {
	sched := cfg.Custom
	if sched == nil {
		sched = newScheduler(cfg.Scheduler)
	}
	return &Simulator{
		now:   Epoch,
		rng:   NewRand(cfg.Seed),
		sched: sched,
	}
}

// SchedulerKind reports which event-queue implementation this simulator
// runs (never SchedulerDefault — the default is resolved at construction).
func (s *Simulator) SchedulerKind() SchedulerKind { return s.sched.Kind() }

// Now returns the current virtual time.
func (s *Simulator) Now() time.Time { return s.now }

// Since returns the virtual duration elapsed since t.
func (s *Simulator) Since(t time.Time) time.Duration { return s.now.Sub(t) }

// Elapsed returns the virtual duration elapsed since Epoch.
func (s *Simulator) Elapsed() time.Duration { return time.Duration(s.nowNS) }

// Rand returns the simulation's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Context returns the ambient causal context (an opaque token, typically a
// trace span ID). Every event scheduled while a context is set inherits it,
// and the context is restored when the event later fires — so causality
// follows work across asynchronous hops (link delivery, switch forwarding,
// retransmission timers) without explicit plumbing. Zero means "no context".
func (s *Simulator) Context() uint64 { return s.ctx }

// SetContext installs the ambient causal context. Callers normally save the
// previous value and restore it when their causal scope ends:
//
//	prev := s.Context()
//	s.SetContext(id)
//	defer s.SetContext(prev)
func (s *Simulator) SetContext(ctx uint64) { s.ctx = ctx }

// Fired reports how many events have fired so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending reports how many events are scheduled but have not fired.
// Cancelled events stop counting immediately even though their tombstones
// are reclaimed lazily.
func (s *Simulator) Pending() int { return s.sched.Len() }

// nsSinceEpoch converts a virtual timestamp to the scheduler's key space,
// clamped to the present (events cannot fire in the past).
func (s *Simulator) nsSinceEpoch(t time.Time) int64 {
	ns := int64(t.Sub(Epoch))
	if ns < s.nowNS {
		ns = s.nowNS
	}
	return ns
}

// enqueue keys e at whenNS with the next sequence number and hands it to
// the scheduler.
//
//sttcp:hotpath
func (s *Simulator) enqueue(e *Event, whenNS int64) {
	e.when = whenNS
	e.seq = s.seq
	s.seq++
	e.live = true
	if !e.daemon {
		s.fg++
	}
	s.sched.Schedule(e)
}

// Schedule arranges for fn to run after delay of virtual time. A negative
// delay is treated as zero. The returned event can be cancelled until it
// fires.
func (s *Simulator) Schedule(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return s.At(s.now.Add(delay), fn)
}

// At arranges for fn to run at virtual time t. Times in the past are clamped
// to the present.
func (s *Simulator) At(t time.Time, fn func()) *Event {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	e := &Event{fn: fn, ctx: s.ctx}
	s.enqueue(e, s.nsSinceEpoch(t))
	return e
}

// Post arranges for fn to run after delay of virtual time, like Schedule,
// but returns no handle: the event cannot be cancelled, and the simulator
// recycles its Event once it fires. Per-segment work (frame delivery, switch
// forwarding, readable/writable notifications) uses Post so steady-state
// traffic does not allocate one Event per segment.
func (s *Simulator) Post(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.PostAt(s.now.Add(delay), fn)
}

// PostAt arranges for fn to run at virtual time t with the same pooling
// behaviour as Post. Times in the past are clamped to the present.
//
//sttcp:hotpath
func (s *Simulator) PostAt(t time.Time, fn func()) {
	if fn == nil {
		//sttcp:allow hotpathalloc programming-error panic, never taken in steady state (TestHeapSteadyStateAllocs)
		panic("sim: PostAt called with nil callback")
	}
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		e.fn, e.ctx = fn, s.ctx
	} else {
		e = &Event{fn: fn, ctx: s.ctx, pooled: true}
	}
	s.enqueue(e, s.nsSinceEpoch(t))
}

// Cancel removes e from the queue. Cancelling a nil, fired, or already
// cancelled event is a no-op. The removal is lazy: the queue entry becomes
// a tombstone reclaimed by the scheduler later, so Cancel is O(1).
//
//sttcp:hotpath
func (s *Simulator) Cancel(e *Event) {
	if e == nil || !e.live {
		return
	}
	e.live = false
	e.gen++
	if !e.daemon {
		s.fg--
	}
	s.sched.Cancel(e)
}

// take marks a popped event consumed: its queue entry is gone, so the
// event may be re-scheduled (timer re-arm) from its callback onward.
// The clock never moves backwards: a daemon event stranded behind an
// idle-time advance (see RunUntil) fires at the present instead.
//
//sttcp:hotpath
func (s *Simulator) take(e *Event) {
	e.live = false
	e.gen++
	if !e.daemon {
		s.fg--
	}
	if e.when > s.nowNS {
		s.nowNS = e.when
		s.now = Epoch.Add(time.Duration(e.when))
	}
	s.fired++
}

// Stop makes the innermost Run return ErrStopped after the current event
// completes.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events in timestamp order until the queue is empty or the
// virtual clock would pass horizon. The clock is left at the time of the
// last fired event, or at horizon if the queue outlives it.
func (s *Simulator) Run(horizon time.Duration) error {
	return s.RunUntil(s.now.Add(horizon))
}

// RunUntil executes events in timestamp order until the queue is empty or
// the next event is after deadline. Daemon events (telemetry sampling
// ticks — see NewDaemonTicker) do not count as work: once only daemon
// events remain the queue is treated as drained, so instrumentation never
// extends a run past the point where the workload itself went quiet.
func (s *Simulator) RunUntil(deadline time.Time) error {
	if s.running {
		return fmt.Errorf("sim: RunUntil called re-entrantly at %v", s.now)
	}
	s.running = true
	defer func() { s.running = false }()
	s.stopped = false
	deadlineNS := int64(deadline.Sub(Epoch))
	for s.fg > 0 {
		next := s.sched.Peek()
		if next == nil {
			break
		}
		if next.when > deadlineNS {
			s.setIdleTime(deadline, deadlineNS)
			return nil
		}
		s.sched.Pop()
		s.take(next)
		s.fire(next)
		if s.stopped {
			return ErrStopped
		}
	}
	s.setIdleTime(deadline, deadlineNS)
	return nil
}

// setIdleTime advances the clock to deadline when no event carried it
// that far.
func (s *Simulator) setIdleTime(deadline time.Time, deadlineNS int64) {
	if s.nowNS < deadlineNS {
		s.nowNS = deadlineNS
		s.now = deadline
	}
}

// RunUntilIdle executes events until the queue drains (daemon events do
// not count as work, as in RunUntil), with a safety cap on the number of
// events to guard against runaway timer loops. It returns an error if the
// cap is reached.
func (s *Simulator) RunUntilIdle(maxEvents uint64) error {
	if s.running {
		return fmt.Errorf("sim: RunUntilIdle called re-entrantly at %v", s.now)
	}
	s.running = true
	defer func() { s.running = false }()
	s.stopped = false
	var fired uint64
	for s.fg > 0 {
		next := s.sched.Pop()
		if next == nil {
			return nil
		}
		if fired >= maxEvents {
			// Undo the pop accounting is impossible (the entry is gone),
			// so fire nothing and report with the event still counted as
			// pending via re-enqueue.
			s.sched.Schedule(next)
			next.live = true
			return fmt.Errorf("sim: event cap %d reached at %v with %d pending", maxEvents, s.now, s.sched.Len())
		}
		fired++
		s.take(next)
		s.fire(next)
		if s.stopped {
			return ErrStopped
		}
	}
	return nil
}

// Step fires exactly one event if one is pending and reports whether it did.
func (s *Simulator) Step() bool {
	next := s.sched.Pop()
	if next == nil {
		return false
	}
	s.take(next)
	s.fire(next)
	return true
}

// fire runs an event's callback with the event's captured causal context as
// the ambient one, and restores the previous ambient context afterwards.
// Pooled events are recycled before the callback runs: no handle to them can
// exist outside the simulator, so the callback itself may immediately reuse
// the Event via another Post.
func (s *Simulator) fire(e *Event) {
	prev := s.ctx
	s.ctx = e.ctx
	fn := e.fn
	if e.pooled {
		e.fn = nil
		s.free = append(s.free, e)
	}
	fn()
	s.ctx = prev
}
