// Package sim implements a deterministic discrete-event simulator.
//
// Everything in this repository — links, NICs, TCP stacks, heartbeat timers,
// applications — runs on one single-threaded event loop driven by a virtual
// clock. A simulation run is completely determined by its seed and the order
// in which events are scheduled, which makes every experiment reproducible
// bit-for-bit. No component inside a simulation may use the real clock or
// spawn goroutines.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Epoch is the virtual time at which every simulation starts. The concrete
// date is arbitrary; only durations relative to Epoch are meaningful.
var Epoch = time.Date(2005, time.June, 28, 0, 0, 0, 0, time.UTC)

// ErrStopped is returned by Run when the simulation was stopped explicitly
// via Stop rather than by reaching its horizon or draining its event queue.
var ErrStopped = errors.New("sim: stopped")

// Event is a scheduled callback. It is created by Schedule/At and can be
// cancelled until it fires.
type Event struct {
	when   time.Time
	seq    uint64
	fn     func()
	ctx    uint64 // causal context captured at schedule time
	idx    int    // heap index; -1 once fired or cancelled
	pooled bool   // created by Post/PostAt; recycled after firing
}

// When reports the virtual time at which the event will fire.
func (e *Event) When() time.Time { return e.when }

// Cancelled reports whether the event has been cancelled or already fired.
func (e *Event) Cancelled() bool { return e.idx < 0 }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if !q[i].when.Equal(q[j].when) {
		return q[i].when.Before(q[j].when)
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.idx = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*q = old[:n-1]
	return e
}

// Simulator is a deterministic discrete-event scheduler. The zero value is
// not usable; construct with New.
type Simulator struct {
	now     time.Time
	queue   eventQueue
	seq     uint64
	rng     *rand.Rand
	stopped bool
	running bool
	fired   uint64
	ctx     uint64
	free    []*Event // recycled Post/PostAt events
}

// NewRand returns a deterministic random source derived from seed. It is
// the single audited construction point for randomness in sim-driven code
// (see DESIGN.md "Determinism contract"): every component draws either
// from the simulator's own source (Rand) or from a *rand.Rand built here,
// so one seed determines the entire run and sttcp-vet's simdeterminism
// analyzer can forbid rand construction everywhere else.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) //sttcp:allow simdeterminism this is the audited seeding point itself
}

// New returns a simulator whose clock reads Epoch and whose random source is
// seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{
		now: Epoch,
		rng: NewRand(seed),
	}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Time { return s.now }

// Since returns the virtual duration elapsed since t.
func (s *Simulator) Since(t time.Time) time.Duration { return s.now.Sub(t) }

// Elapsed returns the virtual duration elapsed since Epoch.
func (s *Simulator) Elapsed() time.Duration { return s.now.Sub(Epoch) }

// Rand returns the simulation's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Context returns the ambient causal context (an opaque token, typically a
// trace span ID). Every event scheduled while a context is set inherits it,
// and the context is restored when the event later fires — so causality
// follows work across asynchronous hops (link delivery, switch forwarding,
// retransmission timers) without explicit plumbing. Zero means "no context".
func (s *Simulator) Context() uint64 { return s.ctx }

// SetContext installs the ambient causal context. Callers normally save the
// previous value and restore it when their causal scope ends:
//
//	prev := s.Context()
//	s.SetContext(id)
//	defer s.SetContext(prev)
func (s *Simulator) SetContext(ctx uint64) { s.ctx = ctx }

// Fired reports how many events have fired so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending reports how many events are scheduled but have not fired.
func (s *Simulator) Pending() int { return len(s.queue) }

// Schedule arranges for fn to run after delay of virtual time. A negative
// delay is treated as zero. The returned event can be cancelled until it
// fires.
func (s *Simulator) Schedule(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return s.At(s.now.Add(delay), fn)
}

// At arranges for fn to run at virtual time t. Times in the past are clamped
// to the present.
func (s *Simulator) At(t time.Time, fn func()) *Event {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	if t.Before(s.now) {
		t = s.now
	}
	e := &Event{when: t, seq: s.seq, fn: fn, ctx: s.ctx}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// Post arranges for fn to run after delay of virtual time, like Schedule,
// but returns no handle: the event cannot be cancelled, and the simulator
// recycles its Event once it fires. Per-segment work (frame delivery, switch
// forwarding, readable/writable notifications) uses Post so steady-state
// traffic does not allocate one Event per segment.
func (s *Simulator) Post(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.PostAt(s.now.Add(delay), fn)
}

// PostAt arranges for fn to run at virtual time t with the same pooling
// behaviour as Post. Times in the past are clamped to the present.
func (s *Simulator) PostAt(t time.Time, fn func()) {
	if fn == nil {
		panic("sim: PostAt called with nil callback")
	}
	if t.Before(s.now) {
		t = s.now
	}
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		e.when, e.fn, e.ctx = t, fn, s.ctx
	} else {
		e = &Event{when: t, fn: fn, ctx: s.ctx, pooled: true}
	}
	e.seq = s.seq
	s.seq++
	heap.Push(&s.queue, e)
}

// Cancel removes e from the queue. Cancelling a nil, fired, or already
// cancelled event is a no-op.
func (s *Simulator) Cancel(e *Event) {
	if e == nil || e.idx < 0 {
		return
	}
	heap.Remove(&s.queue, e.idx)
}

// Stop makes the innermost Run return ErrStopped after the current event
// completes.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events in timestamp order until the queue is empty or the
// virtual clock would pass horizon. The clock is left at the time of the
// last fired event, or at horizon if the queue outlives it.
func (s *Simulator) Run(horizon time.Duration) error {
	return s.RunUntil(s.now.Add(horizon))
}

// RunUntil executes events in timestamp order until the queue is empty or
// the next event is after deadline.
func (s *Simulator) RunUntil(deadline time.Time) error {
	if s.running {
		return fmt.Errorf("sim: RunUntil called re-entrantly at %v", s.now)
	}
	s.running = true
	defer func() { s.running = false }()
	s.stopped = false
	for len(s.queue) > 0 {
		next := s.queue[0]
		if next.when.After(deadline) {
			s.now = deadline
			return nil
		}
		heap.Pop(&s.queue)
		s.now = next.when
		s.fired++
		s.fire(next)
		if s.stopped {
			return ErrStopped
		}
	}
	if s.now.Before(deadline) {
		s.now = deadline
	}
	return nil
}

// RunUntilIdle executes events until the queue drains, with a safety cap on
// the number of events to guard against runaway timer loops. It returns an
// error if the cap is reached.
func (s *Simulator) RunUntilIdle(maxEvents uint64) error {
	if s.running {
		return fmt.Errorf("sim: RunUntilIdle called re-entrantly at %v", s.now)
	}
	s.running = true
	defer func() { s.running = false }()
	s.stopped = false
	var fired uint64
	for len(s.queue) > 0 {
		if fired >= maxEvents {
			return fmt.Errorf("sim: event cap %d reached at %v with %d pending", maxEvents, s.now, len(s.queue))
		}
		next := heap.Pop(&s.queue).(*Event)
		s.now = next.when
		s.fired++
		fired++
		s.fire(next)
		if s.stopped {
			return ErrStopped
		}
	}
	return nil
}

// Step fires exactly one event if one is pending and reports whether it did.
func (s *Simulator) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	next := heap.Pop(&s.queue).(*Event)
	s.now = next.when
	s.fired++
	s.fire(next)
	return true
}

// fire runs an event's callback with the event's captured causal context as
// the ambient one, and restores the previous ambient context afterwards.
// Pooled events are recycled before the callback runs: no handle to them can
// exist outside the simulator, so the callback itself may immediately reuse
// the Event via another Post.
func (s *Simulator) fire(e *Event) {
	prev := s.ctx
	s.ctx = e.ctx
	fn := e.fn
	if e.pooled {
		e.fn = nil
		s.free = append(s.free, e)
	}
	fn()
	s.ctx = prev
}
