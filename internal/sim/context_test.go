package sim

import (
	"testing"
	"time"
)

// TestContextPropagation checks the ambient causal context rides along with
// scheduled events: an event captures the context active when it was
// scheduled, sees it restored while firing (including across further
// asynchronous hops), and does not leak it to unrelated events.
func TestContextPropagation(t *testing.T) {
	s := New(1)
	if s.Context() != 0 {
		t.Fatalf("fresh simulator has context %d", s.Context())
	}

	var got []uint64
	record := func() { got = append(got, s.Context()) }

	s.At(s.Now().Add(time.Millisecond), record) // scheduled with no context

	s.SetContext(7)
	// Chain: the hop scheduled *while firing* inherits the firing context.
	s.At(s.Now().Add(2*time.Millisecond), func() {
		record()
		s.At(s.Now().Add(2*time.Millisecond), record)
	})
	s.SetContext(0)

	s.At(s.Now().Add(3*time.Millisecond), record) // after the scope closed

	if err := s.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 7, 0, 7}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if s.Context() != 0 {
		t.Fatalf("context leaked after run: %d", s.Context())
	}
}
