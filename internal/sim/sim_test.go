package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.Schedule(30*time.Millisecond, func() { order = append(order, 3) })
	s.Schedule(10*time.Millisecond, func() { order = append(order, 1) })
	s.Schedule(20*time.Millisecond, func() { order = append(order, 2) })
	if err := s.Run(time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5*time.Millisecond, func() { order = append(order, i) })
	}
	if err := s.Run(time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	s := New(1)
	var at time.Time
	s.Schedule(250*time.Millisecond, func() { at = s.Now() })
	if err := s.Run(time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := at.Sub(Epoch); got != 250*time.Millisecond {
		t.Fatalf("event fired at %v after epoch, want 250ms", got)
	}
	if s.Now().Sub(Epoch) != time.Second {
		t.Fatalf("clock ended at %v after epoch, want 1s", s.Now().Sub(Epoch))
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	e := s.Schedule(10*time.Millisecond, func() { fired = true })
	s.Cancel(e)
	if err := s.Run(time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("event does not report cancelled")
	}
	s.Cancel(e) // double-cancel must be a no-op
	s.Cancel(nil)
}

func TestCancelFromWithinEvent(t *testing.T) {
	s := New(1)
	fired := false
	var e2 *Event
	e2 = s.Schedule(20*time.Millisecond, func() { fired = true })
	s.Schedule(10*time.Millisecond, func() { s.Cancel(e2) })
	if err := s.Run(time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if fired {
		t.Fatal("event cancelled mid-run still fired")
	}
}

func TestNegativeDelayClamps(t *testing.T) {
	s := New(1)
	fired := false
	s.Schedule(-time.Second, func() { fired = true })
	if err := s.Run(time.Millisecond); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !fired {
		t.Fatal("negative-delay event did not fire immediately")
	}
}

func TestStop(t *testing.T) {
	s := New(1)
	count := 0
	for i := 1; i <= 5; i++ {
		s.Schedule(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 2 {
				s.Stop()
			}
		})
	}
	err := s.Run(time.Second)
	if err != ErrStopped {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if count != 2 {
		t.Fatalf("fired %d events after stop, want 2", count)
	}
}

func TestRunUntilIdleCap(t *testing.T) {
	s := New(1)
	var loop func()
	loop = func() { s.Schedule(time.Millisecond, loop) }
	loop()
	if err := s.RunUntilIdle(100); err == nil {
		t.Fatal("runaway loop did not hit the event cap")
	}
}

func TestStep(t *testing.T) {
	s := New(1)
	n := 0
	s.Schedule(time.Millisecond, func() { n++ })
	s.Schedule(2*time.Millisecond, func() { n++ })
	if !s.Step() || n != 1 {
		t.Fatalf("first step: n=%d", n)
	}
	if !s.Step() || n != 2 {
		t.Fatalf("second step: n=%d", n)
	}
	if s.Step() {
		t.Fatal("step on empty queue returned true")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		s := New(42)
		var out []int64
		for i := 0; i < 50; i++ {
			d := time.Duration(s.Rand().Intn(1000)) * time.Microsecond
			s.Schedule(d, func() { out = append(out, s.Elapsed().Nanoseconds()) })
		}
		if err := s.Run(time.Second); err != nil {
			t.Fatalf("run: %v", err)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at event %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestSchedulePropertyMonotone property-checks that however events are
// scheduled, they always fire in non-decreasing time order.
func TestSchedulePropertyMonotone(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New(7)
		var times []time.Time
		for _, d := range delays {
			s.Schedule(time.Duration(d)*time.Microsecond, func() {
				times = append(times, s.Now())
			})
		}
		if err := s.Run(time.Minute); err != nil {
			return false
		}
		if len(times) != len(delays) {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i].Before(times[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTicker(t *testing.T) {
	s := New(1)
	n := 0
	tk := NewTicker(s, 100*time.Millisecond, func() { n++ })
	if err := s.Run(time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if n != 10 {
		t.Fatalf("ticker fired %d times in 1s at 100ms, want 10", n)
	}
	tk.Stop()
	if err := s.Run(time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if n != 10 {
		t.Fatalf("stopped ticker kept firing: %d", n)
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	s := New(1)
	n := 0
	var tk *Ticker
	tk = NewTicker(s, 10*time.Millisecond, func() {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	if err := s.Run(time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if n != 3 {
		t.Fatalf("ticker fired %d times, want 3", n)
	}
}

func TestTickerReset(t *testing.T) {
	s := New(1)
	n := 0
	tk := NewTicker(s, 100*time.Millisecond, func() { n++ })
	s.Schedule(500*time.Millisecond, func() { tk.Reset(50 * time.Millisecond) })
	if err := s.Run(time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	// Ticks at 100..400ms (4). At t=500ms the Reset event was scheduled
	// before the 500ms tick (lower sequence number), so it fires first
	// and cancels that tick. Then every 50ms from 550..1000: 10 more.
	if n != 14 {
		t.Fatalf("ticker fired %d times, want 14", n)
	}
}

// TestDaemonTickerDoesNotKeepRunAlive pins the daemon-event contract: a
// daemon ticker interleaves with foreground work, but once the workload's
// own queue drains the run ends — instrumentation alone never extends it.
func TestDaemonTickerDoesNotKeepRunAlive(t *testing.T) {
	s := New(1)
	ticks := 0
	NewDaemonTicker(s, 100*time.Millisecond, func() { ticks++ })
	s.Schedule(450*time.Millisecond, func() {}) // the workload's last event
	if err := s.Run(10 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	// Ticks at 100..400ms fire alongside the workload; the 500ms tick is
	// past the last foreground event and must not.
	if ticks != 4 {
		t.Fatalf("daemon ticker fired %d times, want 4 (run must end with the workload)", ticks)
	}
	// The idle clock still advances to the horizon, as for a drained queue.
	if got := s.Now(); !got.Equal(Epoch.Add(10 * time.Second)) {
		t.Fatalf("clock at %v, want horizon", got)
	}

	// New foreground work revives the run — and the stranded past tick
	// fires at the present rather than rewinding the clock.
	s.Schedule(200*time.Millisecond, func() {})
	if err := s.Run(time.Second); err != nil {
		t.Fatalf("second run: %v", err)
	}
	if ticks <= 4 {
		t.Fatalf("daemon ticker dead after revival: %d ticks", ticks)
	}
	if s.Now().Before(Epoch.Add(10 * time.Second)) {
		t.Fatalf("clock rewound to %v", s.Now())
	}
}

// TestDaemonCancelAccounting exercises the foreground counter against
// cancelled daemon and foreground events: cancelling must not unbalance
// the count that decides when Run treats the queue as drained.
func TestDaemonCancelAccounting(t *testing.T) {
	s := New(1)
	ticks := 0
	tk := NewDaemonTicker(s, 10*time.Millisecond, func() { ticks++ })
	ev := s.Schedule(50*time.Millisecond, func() { t.Error("cancelled event fired") })
	s.Cancel(ev)
	s.Schedule(35*time.Millisecond, func() { tk.Stop() })
	if err := s.Run(time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if ticks != 3 {
		t.Fatalf("daemon ticker fired %d times before Stop at 35ms, want 3", ticks)
	}
	if err := s.Run(time.Second); err != nil {
		t.Fatalf("idle run: %v", err)
	}
	if ticks != 3 {
		t.Fatalf("stopped daemon ticker kept firing: %d", ticks)
	}
}

func TestReentrantRunRejected(t *testing.T) {
	s := New(1)
	var innerErr error
	s.Schedule(time.Millisecond, func() {
		innerErr = s.Run(time.Millisecond)
	})
	if err := s.Run(time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if innerErr == nil {
		t.Fatal("re-entrant Run did not error")
	}
}
