package sim

import "time"

// Ticker invokes a callback at a fixed virtual-time period until stopped.
// Unlike time.Ticker there is no channel: the callback runs inline on the
// event loop, which is the natural shape for a single-threaded simulation.
// Each tick re-arms a single reusable Timer, so a steady ticker (heartbeats,
// pacing loops) allocates nothing after construction.
type Ticker struct {
	timer   *Timer
	period  time.Duration
	fn      func()
	stopped bool

	// clock, when set (Clock.NewTicker), stretches the period at each
	// re-arm so the ticker follows its host's skewed timer rate. Nil means
	// the nominal simulator timeline.
	clock *Clock
}

// NewTicker schedules fn to run every period, starting one period from now.
// A non-positive period panics: a zero-period ticker would wedge the event
// loop at a single instant.
func NewTicker(s *Simulator, period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: NewTicker with non-positive period")
	}
	t := &Ticker{period: period, fn: fn}
	t.timer = s.NewTimer(t.tick)
	t.timer.Arm(period)
	return t
}

// NewDaemonTicker is NewTicker for background instrumentation: its ticks
// fire normally while the simulation has other work, but do not count as
// work themselves, so a perpetually re-arming ticker (telemetry sampling)
// never keeps Run alive after the workload's own event queue drains. This
// is what lets a run with sampling enabled finish at exactly the same
// virtual instant as the same run without it.
func NewDaemonTicker(s *Simulator, period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: NewDaemonTicker with non-positive period")
	}
	t := &Ticker{period: period, fn: fn}
	t.timer = s.NewTimer(t.tick)
	t.timer.ev.daemon = true
	t.timer.Arm(period)
	return t
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	// Re-arm before the callback so the callback may Stop the ticker.
	t.timer.Arm(t.clock.Stretch(t.period))
	t.fn()
}

// Stop cancels future ticks. It is safe to call from within the callback and
// is idempotent.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.timer.Stop()
}

// Period returns the ticker's period.
func (t *Ticker) Period() time.Duration { return t.period }

// Reset changes the period and re-arms the ticker from the current instant.
func (t *Ticker) Reset(period time.Duration) {
	if period <= 0 {
		panic("sim: Ticker.Reset with non-positive period")
	}
	if t.stopped {
		return
	}
	t.period = period
	t.timer.Arm(t.clock.Stretch(period))
}
