package sim

// calendarScheduler is a calendar queue (Brown 1988, with the lazy-sort
// refinement of ladder queues) tuned for the simulator's timer-heavy
// workload: thousands of RTO/heartbeat/delivery timers whose deadlines
// cluster within a narrow horizon and which are overwhelmingly re-armed
// or cancelled before they fire.
//
// Layout: a ring of calBuckets buckets, each width nanoseconds wide,
// covering [curStart, ringEnd). The boundary ringEnd is fixed when the
// ring is (re-)anchored — it does NOT advance with curStart, which is
// what keeps every overflow deadline strictly later than every ring
// deadline even as the clock eats through the ring. An event inside the
// window is appended — unsorted, O(1) — to the bucket covering its
// deadline; an event at or beyond ringEnd goes to the unsorted overflow
// tier. The simulator consumes buckets in ring order: when the clock
// enters a bucket its entries are sorted once by (when, seq), and from
// then on it is drained front-to-back (late arrivals into the current
// bucket use a binary-search insert to keep it sorted). When the ring
// runs dry the overflow tier is re-anchored: the bucket width is re-fit
// to the observed event density and overflow entries inside the new
// span are dealt into the ring.
//
// Cancellation is lazy: a cancelled or re-armed timer leaves a
// tombstone (an entry whose recorded generation no longer matches its
// event's) that is discarded when its bucket is drained, or reclaimed
// by a whole-structure compaction when tombstones outnumber live
// entries four to one. Pop order is the exact total order by
// (when, seq), byte-identical to the heap scheduler's — the
// differential tests in scheduler_test.go hold both implementations to
// that contract.
type calendarScheduler struct {
	buckets  [calBuckets][]entry
	cur      int   // index of the bucket the clock is in
	curStart int64 // start of bucket cur's window, ns since Epoch
	ringEnd  int64 // first deadline beyond the ring, fixed at anchor time
	width    int64 // ns per bucket
	sorted   bool  // buckets[cur] is sorted and draining
	drained  int   // buckets[cur][:drained] has been consumed

	overflow []entry // deadlines at or beyond ringEnd

	live int // live entries, ring + overflow
	ring int // total entries in the ring, tombstones included
	dead int // tombstones, ring + overflow
}

const (
	calBuckets = 1 << 10
	calMask    = calBuckets - 1

	// calMinWidth and calMaxWidth clamp the adaptive bucket width. The
	// floor matches sub-microsecond frame serialization gaps; the
	// ceiling keeps a heartbeat-only queue (period 200ms) from mapping
	// a whole run into one bucket.
	calMinWidth  = int64(200)      // 200ns
	calMaxWidth  = int64(10 << 20) // ~10.5ms
	calInitWidth = int64(50_000)   // 50µs, a LAN-scale guess until the first re-anchor
)

// rewindStrandBug, when set, makes rewind skip its deal-back step —
// reintroducing, byte for byte, the bug the scheduler differential suite
// caught before this queue shipped: spilled entries below the new
// ringEnd stay stranded in overflow (consulted only once the ring runs
// dry) while later-scheduled ring entries fire first, so pops come out
// of (when, seq) order and the virtual clock can step backwards. It
// exists solely so the exhaustive-interleaving explorer's golden
// regression test can prove a real historical bug is found and shrunk;
// nothing outside tests may set it.
var rewindStrandBug bool

// SetRewindStrandBugForTest toggles the reintroduced rewind bug and
// returns the previous setting, so tests can restore it. See
// rewindStrandBug; production code must never call this.
func SetRewindStrandBugForTest(on bool) bool {
	prev := rewindStrandBug
	rewindStrandBug = on
	return prev
}

func newCalendarScheduler() *calendarScheduler {
	return &calendarScheduler{width: calInitWidth, ringEnd: calInitWidth * calBuckets}
}

func (c *calendarScheduler) Kind() SchedulerKind { return SchedulerCalendar }

func (c *calendarScheduler) Len() int { return c.live }

// span is the total time the ring currently covers.
func (c *calendarScheduler) span() int64 { return c.width * calBuckets }

//sttcp:hotpath
func (c *calendarScheduler) Schedule(e *Event) {
	en := entry{when: e.when, seq: e.seq, gen: e.gen, ev: e}
	c.live++
	if e.when < c.curStart {
		// Only possible when a run stopped at a deadline short of a
		// re-anchored ring and new work was scheduled in the gap; pull
		// the ring back so the new event is inside it.
		c.rewind(e.when) //sttcp:allow hotpathalloc rewind is the rare re-anchor-gap path; its appends reuse bucket/overflow backing arrays
	}
	if e.when >= c.ringEnd {
		//sttcp:allow hotpathalloc amortized overflow growth; steady state reuses capacity (TestCalendarSteadyStateAllocs)
		c.overflow = append(c.overflow, en)
		return
	}
	idx := (c.cur + int((e.when-c.curStart)/c.width)) & calMask
	if idx == c.cur && c.sorted {
		c.insertSortedCur(en)
	} else {
		//sttcp:allow hotpathalloc amortized bucket growth; steady state reuses capacity (TestCalendarSteadyStateAllocs)
		c.buckets[idx] = append(c.buckets[idx], en)
	}
	c.ring++
}

//sttcp:hotpath
func (c *calendarScheduler) Cancel(e *Event) {
	c.live--
	c.dead++
	if c.dead > 64 && c.dead > 4*c.live {
		c.compact() //sttcp:allow hotpathalloc amortized tombstone compaction reuses the overflow backing array
	}
}

func (c *calendarScheduler) Peek() *Event {
	if !c.settle() {
		return nil
	}
	return c.buckets[c.cur][c.drained].ev
}

//sttcp:hotpath
func (c *calendarScheduler) Pop() *Event {
	if !c.settle() {
		return nil
	}
	b := c.buckets[c.cur]
	en := b[c.drained]
	b[c.drained] = entry{}
	c.drained++
	c.ring--
	c.live--
	return en.ev
}

// settle advances the ring until buckets[cur][drained] is the earliest
// live entry in the whole queue, discarding tombstones on the way. It
// reports false when no live entries remain.
//
//sttcp:hotpath
func (c *calendarScheduler) settle() bool {
	if c.live == 0 {
		if c.ring > 0 || len(c.overflow) > 0 {
			c.reset()
		}
		return false
	}
	for {
		b := c.buckets[c.cur]
		if c.drained < len(b) && !c.sorted {
			sortEntries(b)
			c.sorted = true
		}
		for c.drained < len(b) {
			if !b[c.drained].stale() {
				return true
			}
			b[c.drained] = entry{}
			c.drained++
			c.ring--
			c.dead--
		}
		if c.drained > 0 {
			c.buckets[c.cur] = b[:0]
		}
		c.drained = 0
		c.sorted = false
		if c.ring == 0 {
			if !c.reanchor() { //sttcp:allow hotpathalloc re-anchoring is the between-bursts slow path; compaction reuses backing arrays
				return false
			}
			continue
		}
		c.cur = (c.cur + 1) & calMask
		c.curStart += c.width
	}
}

// insertSortedCur places en into the (sorted, draining) current bucket.
// Every earlier-keyed entry has already been consumed — the simulator
// clamps deadlines to the present and seq grows monotonically — so the
// insertion point is always at or after drained.
//
//sttcp:hotpath
func (c *calendarScheduler) insertSortedCur(en entry) {
	b := c.buckets[c.cur]
	lo, hi := c.drained, len(b)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b[mid].less(en) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	//sttcp:allow hotpathalloc amortized bucket growth; steady state reuses capacity (TestCalendarSteadyStateAllocs)
	b = append(b, entry{})
	copy(b[lo+1:], b[lo:])
	b[lo] = en
	c.buckets[c.cur] = b
}

// reanchor re-fits the ring to the overflow tier once the ring is
// empty: bucket width is recomputed from the live overflow density,
// curStart jumps to the earliest overflow deadline, and every overflow
// entry inside the new span is dealt into the ring. Reports false when
// nothing live remains anywhere.
func (c *calendarScheduler) reanchor() bool {
	// Compact the overflow in place, dropping tombstones and finding the
	// live extremes.
	keep := c.overflow[:0]
	var minWhen, maxWhen int64
	for _, en := range c.overflow {
		if en.stale() {
			c.dead--
			continue
		}
		if len(keep) == 0 || en.when < minWhen {
			minWhen = en.when
		}
		if len(keep) == 0 || en.when > maxWhen {
			maxWhen = en.when
		}
		keep = append(keep, en)
	}
	for i := len(keep); i < len(c.overflow); i++ {
		c.overflow[i] = entry{}
	}
	c.overflow = keep
	if len(keep) == 0 {
		return false
	}

	// Width ≈ 3× the mean inter-event gap (Brown's rule of thumb), so a
	// bucket holds a handful of events. Depends only on queue content,
	// never on wall time, so replay stays deterministic.
	span := maxWhen - minWhen
	w := 3 * span / int64(len(keep))
	if w < calMinWidth {
		w = calMinWidth
	}
	if w > calMaxWidth {
		w = calMaxWidth
	}
	c.width = w
	c.cur = 0
	c.curStart = minWhen
	c.ringEnd = minWhen + c.span()
	c.sorted = false
	c.drained = 0

	// Deal overflow entries inside the new window into the ring.
	dst := c.overflow[:0]
	for _, en := range c.overflow {
		if en.when < c.ringEnd {
			idx := int((en.when-c.curStart)/c.width) & calMask
			c.buckets[idx] = append(c.buckets[idx], en)
			c.ring++
		} else {
			dst = append(dst, en)
		}
	}
	for i := len(dst); i < len(c.overflow); i++ {
		c.overflow[i] = entry{}
	}
	c.overflow = dst
	return true
}

// rewind pulls the ring back so that a deadline earlier than curStart
// fits: every ring entry is spilled to overflow, the ring restarts at the
// new deadline, and everything inside the new window is dealt back in.
// The final step is what maintains the ringEnd invariant — without it,
// spilled entries below the new ringEnd would sit in overflow (consulted
// only when the ring drains dry) while later-scheduled ring entries fire
// first. Only reachable when a run stopped at a deadline short of a
// re-anchored ring, so it is never on the hot path.
func (c *calendarScheduler) rewind(when int64) {
	c.rewindKeepStart()
	c.curStart = when
	c.ringEnd = when + c.span()
	if rewindStrandBug {
		// The pre-fix behaviour: no deal-back, so everything just
		// spilled sits in overflow below ringEnd. See rewindStrandBug.
		return
	}
	// Every spilled or overflow entry is at or after the old curStart,
	// and the new curStart precedes it, so the offsets below are never
	// negative and never reach past the ring.
	dst := c.overflow[:0]
	for _, en := range c.overflow {
		if en.when < c.ringEnd {
			idx := int((en.when-c.curStart)/c.width) & calMask
			c.buckets[idx] = append(c.buckets[idx], en)
			c.ring++
		} else {
			dst = append(dst, en)
		}
	}
	for i := len(dst); i < len(c.overflow); i++ {
		c.overflow[i] = entry{}
	}
	c.overflow = dst
}

// drainedFor returns how many entries at the front of bucket i have
// already been consumed (only ever non-zero for the current bucket).
func (c *calendarScheduler) drainedFor(i int) int {
	if i == c.cur {
		return c.drained
	}
	return 0
}

// compact rebuilds the whole structure without tombstones: all live
// entries are gathered into overflow and the ring is re-anchored.
func (c *calendarScheduler) compact() {
	c.rewindKeepStart()
	c.reanchor()
}

// rewindKeepStart spills the ring into overflow (dropping tombstones as
// it goes is left to reanchor) without moving curStart.
func (c *calendarScheduler) rewindKeepStart() {
	for i := range c.buckets {
		b := c.buckets[i]
		for j := c.drainedFor(i); j < len(b); j++ {
			c.overflow = append(c.overflow, b[j])
			b[j] = entry{}
		}
		c.buckets[i] = b[:0]
	}
	c.ring = 0
	c.cur = 0
	c.sorted = false
	c.drained = 0
}

// reset clears leftover tombstones once the queue holds nothing live.
func (c *calendarScheduler) reset() {
	for i := range c.buckets {
		b := c.buckets[i]
		if len(b) == 0 {
			continue
		}
		for j := range b {
			b[j] = entry{}
		}
		c.buckets[i] = b[:0]
	}
	for i := range c.overflow {
		c.overflow[i] = entry{}
	}
	c.overflow = c.overflow[:0]
	c.ring = 0
	c.dead = 0
	c.sorted = false
	c.drained = 0
}
