package sim

import "time"

// Timer is a reusable one-shot timer: the callback is bound once at
// construction and the timer re-arms without allocating, reusing its single
// embedded Event. Re-arming replaces any pending arming. Unlike the handle
// returned by Schedule — which must be abandoned once it fires — a Timer is
// the sole owner of its event and stays valid across any number of
// arm/fire/stop cycles, which is what lets per-connection RTO, persist, and
// delayed-ACK timers run without per-segment heap churn.
//
// Re-arming and stopping are lazy: the superseded queue entry becomes a
// tombstone (the event's generation moves on) and is reclaimed by the
// scheduler later, so the RTO-reset-per-ACK pattern costs one O(1) insert
// instead of a heap removal plus re-insert.
//
// The zero value is not usable; construct with Simulator.NewTimer.
type Timer struct {
	s  *Simulator
	ev Event
}

// NewTimer returns a timer that runs fn each time it fires. The callback
// runs with the causal context that was ambient when Arm was called.
func (s *Simulator) NewTimer(fn func()) *Timer {
	if fn == nil {
		panic("sim: NewTimer called with nil callback")
	}
	t := &Timer{s: s}
	t.ev.fn = fn
	return t
}

// Arm schedules the callback after delay of virtual time, replacing any
// pending arming. A negative delay is treated as zero.
//
//sttcp:hotpath
func (t *Timer) Arm(delay time.Duration) {
	if delay < 0 {
		delay = 0
	}
	whenNS := t.s.nowNS + int64(delay)
	t.s.Cancel(&t.ev)
	t.ev.ctx = t.s.ctx
	t.s.enqueue(&t.ev, whenNS)
}

// ArmAt schedules the callback at virtual time tm, replacing any pending
// arming. Times in the past are clamped to the present.
//
//sttcp:hotpath
func (t *Timer) ArmAt(tm time.Time) {
	t.s.Cancel(&t.ev)
	t.ev.ctx = t.s.ctx
	t.s.enqueue(&t.ev, t.s.nsSinceEpoch(tm))
}

// Stop cancels a pending arming. Stopping an unarmed timer is a no-op; the
// timer may be re-armed afterwards.
//
//sttcp:hotpath
func (t *Timer) Stop() {
	t.s.Cancel(&t.ev)
}

// Armed reports whether the timer is scheduled and has not yet fired.
func (t *Timer) Armed() bool { return t.ev.live }

// When reports the virtual time of the pending arming. It is only
// meaningful while Armed.
func (t *Timer) When() time.Time { return t.ev.When() }
