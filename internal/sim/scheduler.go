package sim

import "fmt"

// SchedulerKind selects the event-queue implementation backing a
// Simulator. The zero value picks the default (the binary heap), so a
// zero Config keeps today's behaviour.
type SchedulerKind uint8

const (
	// SchedulerDefault resolves to the reference implementation.
	SchedulerDefault SchedulerKind = iota
	// SchedulerHeap is the reference binary min-heap: O(log n) insert
	// and pop, robust for any event mix.
	SchedulerHeap
	// SchedulerCalendar is a calendar queue tuned for the RTO/HB
	// timer-heavy workload: events land in time-indexed buckets by O(1)
	// append and each bucket is sorted once when the clock reaches it,
	// so steady-state insert cost does not grow with the queue.
	SchedulerCalendar
)

// Resolve maps SchedulerDefault onto the concrete default implementation
// and returns any other kind unchanged.
func (k SchedulerKind) Resolve() SchedulerKind {
	if k == SchedulerDefault {
		return SchedulerHeap
	}
	return k
}

// String returns the command-line spelling of the kind.
func (k SchedulerKind) String() string {
	switch k.Resolve() {
	case SchedulerCalendar:
		return "calendar"
	default:
		return "heap"
	}
}

// Set parses a command-line spelling, implementing flag.Value so CLIs can
// register -scheduler with flag.Var.
func (k *SchedulerKind) Set(s string) error {
	got, err := ParseSchedulerKind(s)
	if err != nil {
		return err
	}
	*k = got
	return nil
}

// ParseSchedulerKind parses the command-line spelling of a scheduler kind.
func ParseSchedulerKind(s string) (SchedulerKind, error) {
	switch s {
	case "", "default":
		return SchedulerDefault, nil
	case "heap":
		return SchedulerHeap, nil
	case "calendar":
		return SchedulerCalendar, nil
	}
	return SchedulerDefault, fmt.Errorf("sim: unknown scheduler kind %q (want heap or calendar)", s)
}

// Config configures a Simulator. The zero value is valid: seed 0 and the
// default scheduler.
type Config struct {
	// Seed drives all randomness in the run.
	Seed int64
	// Scheduler selects the event-queue implementation.
	Scheduler SchedulerKind
	// Custom, when non-nil, supplies the event queue directly and
	// Scheduler is ignored. This is the injection point for scheduler
	// wrappers — the exhaustive-interleaving explorer decorates a stock
	// queue (see NewScheduler) to fork on same-timestamp tie-breaks.
	// A custom scheduler must still honour the Scheduler contract for
	// events at distinct timestamps: the simulator's clock follows pop
	// order, so only exact ties are safely permutable.
	Custom Scheduler
}

// Scheduler is the event-queue backend of a Simulator: a priority queue
// over (virtual time, sequence number) keys with lazy cancellation. The
// Simulator owns Event lifecycle (sequence numbers, generation bumps,
// the live flag); the scheduler owns placement and retrieval. All
// implementations must yield the exact same pop order — the total order
// by (when, seq) — for the same schedule/cancel history, which is what
// keeps a run's trace independent of the scheduler selected (proved by
// the differential tests in scheduler_test.go).
//
// Cancellation is lazy everywhere: Cancel only bumps tombstone
// accounting, and the stale entry — detected by its recorded generation
// no longer matching the event's — is skipped when it surfaces at the
// head, or reclaimed wholesale by compaction when tombstones dominate.
type Scheduler interface {
	// Kind identifies the implementation.
	Kind() SchedulerKind
	// Len reports the number of live (scheduled, not cancelled) events.
	Len() int
	// Schedule inserts e keyed by its (when, seq). The caller guarantees
	// e has no live entry in the queue.
	Schedule(e *Event)
	// Cancel records that e's pending entry became a tombstone. The
	// caller has already bumped e's generation; the entry itself is
	// reclaimed lazily.
	Cancel(e *Event)
	// Peek returns the earliest live event without removing it, nil when
	// no live events remain.
	Peek() *Event
	// Pop removes and returns the earliest live event, nil when no live
	// events remain.
	Pop() *Event
}

// newScheduler constructs the implementation for k.
func newScheduler(k SchedulerKind) Scheduler {
	if k.Resolve() == SchedulerCalendar {
		return newCalendarScheduler()
	}
	return &heapScheduler{}
}

// NewScheduler constructs a standalone event queue of kind k, for
// wrappers that decorate a stock implementation and inject themselves
// via Config.Custom. Everyone else lets NewWithConfig pick the queue.
func NewScheduler(k SchedulerKind) Scheduler { return newScheduler(k) }

// entry is one scheduled occurrence of an Event. The (when, seq) key is
// copied out of the event so ordering never dereferences the event on
// the comparison path, and gen snapshots the event's generation at
// schedule time: a mismatch later means the occurrence was cancelled or
// superseded (timer re-arm) and the entry is a tombstone.
type entry struct {
	when int64 // virtual time, nanoseconds since Epoch
	seq  uint64
	gen  uint32
	ev   *Event
}

// stale reports whether the entry is a tombstone.
func (en entry) stale() bool { return en.gen != en.ev.gen }

// less orders entries by (when, seq); seq is unique per simulator, so
// this is a strict total order.
func (en entry) less(o entry) bool {
	if en.when != o.when {
		return en.when < o.when
	}
	return en.seq < o.seq
}

// sortEntries sorts es ascending by (when, seq) without going through
// sort.Interface (no boxing, zero allocation): insertion sort for short
// runs, median-of-three quicksort above that. Keys are unique, so
// stability is moot.
func sortEntries(es []entry) {
	for len(es) > 24 {
		lo, hi := 0, len(es)-1
		mid := lo + (hi-lo)/2
		// median-of-three pivot, stashed at es[lo]
		if es[mid].less(es[lo]) {
			es[mid], es[lo] = es[lo], es[mid]
		}
		if es[hi].less(es[lo]) {
			es[hi], es[lo] = es[lo], es[hi]
		}
		if es[hi].less(es[mid]) {
			es[hi], es[mid] = es[mid], es[hi]
		}
		es[lo], es[mid] = es[mid], es[lo]
		pivot := es[lo]
		i, j := lo, hi+1
		for {
			for i++; i < len(es) && es[i].less(pivot); i++ {
			}
			for j--; pivot.less(es[j]); j-- {
			}
			if i >= j {
				break
			}
			es[i], es[j] = es[j], es[i]
		}
		es[lo], es[j] = es[j], es[lo]
		// recurse on the smaller half, loop on the larger
		if j-lo < len(es)-j {
			sortEntries(es[lo:j])
			es = es[j+1:]
		} else {
			sortEntries(es[j+1:])
			es = es[lo:j]
		}
	}
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && es[j].less(es[j-1]); j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}
