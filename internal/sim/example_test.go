package sim_test

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Example shows the basic discrete-event pattern: schedule work in virtual
// time and run the clock forward. No real time passes.
func Example() {
	s := sim.New(1)
	s.Schedule(250*time.Millisecond, func() {
		fmt.Println("fired at", s.Elapsed())
	})
	sim.NewTicker(s, 100*time.Millisecond, func() {
		if s.Elapsed() <= 300*time.Millisecond {
			fmt.Println("tick at", s.Elapsed())
		}
	})
	_ = s.Run(time.Second)
	fmt.Println("clock now at", s.Elapsed())
	// Output:
	// tick at 100ms
	// tick at 200ms
	// fired at 250ms
	// tick at 300ms
	// clock now at 1s
}
