package sim

import "time"

// Clock scales virtual-time delays for one consumer of the simulator —
// typically one host. The simulator itself keeps a single global timeline;
// a Clock models a machine whose oscillator (or scheduler) runs fast or
// slow relative to that timeline: a rate of 1.05 means every period this
// clock schedules takes 5% longer of global virtual time, which is how
// inter-host clock-rate skew and CPU starvation are injected without
// forking the event queue.
//
// A nil *Clock behaves as the nominal rate-1 clock everywhere, so
// components can carry an optional Clock without nil checks. Rate 1 is an
// exact pass-through: Stretch returns its argument unchanged, so enabling
// the plumbing cannot perturb an unskewed run by even a nanosecond.
type Clock struct {
	s    *Simulator
	rate float64
}

// NewClock returns a clock at nominal rate 1.
func NewClock(s *Simulator) *Clock { return &Clock{s: s, rate: 1} }

// SetRate changes the clock's rate. Rates must be positive; 1 is nominal,
// >1 runs slow (stretched periods), <1 runs fast. Tickers built on the
// clock pick the new rate up at their next re-arm.
func (c *Clock) SetRate(r float64) {
	if r <= 0 {
		panic("sim: Clock.SetRate with non-positive rate")
	}
	c.rate = r
}

// Rate returns the current rate (1 for a nil clock).
func (c *Clock) Rate() float64 {
	if c == nil {
		return 1
	}
	return c.rate
}

// Stretch converts a nominal duration into this clock's local duration.
// At rate 1 (or on a nil clock) it is the identity, bit-for-bit.
func (c *Clock) Stretch(d time.Duration) time.Duration {
	if c == nil || c.rate == 1 {
		return d
	}
	sd := time.Duration(float64(d) * c.rate)
	if sd <= 0 && d > 0 {
		sd = 1
	}
	return sd
}

// Schedule runs fn after the clock-local delay d.
func (c *Clock) Schedule(d time.Duration, fn func()) *Event {
	return c.s.Schedule(c.Stretch(d), fn)
}

// NewTicker returns a ticker whose period is stretched by this clock at
// every re-arm, so rate changes mid-run take effect on the next tick.
func (c *Clock) NewTicker(period time.Duration, fn func()) *Ticker {
	t := NewTicker(c.s, period, fn)
	t.clock = c
	// Re-arm the first tick under the clock's current rate.
	t.timer.Arm(c.Stretch(period))
	return t
}
