package scenario_test

import (
	"fmt"

	"repro/internal/scenario"
)

// Example runs the paper's Demo 1 as a five-line script: a download
// survives a primary crash, transparently to the client.
func Example() {
	script := `
client download 8MiB
at 300ms crash primary
run 30s
expect takeover
expect clients-done
`
	sc, err := scenario.Parse(script)
	if err != nil {
		fmt.Println("parse:", err)
		return
	}
	res, err := scenario.Run(sc)
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	for _, c := range res.Checks {
		fmt.Printf("expect %s: %v\n", c.Cond, c.Passed)
	}
	// Output:
	// expect takeover: true
	// expect clients-done: true
}
