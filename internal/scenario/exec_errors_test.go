package scenario

import (
	"strings"
	"testing"
)

// TestInjectionErrors exercises the executor's fault-injection error paths:
// injections that cannot take effect must fail the run loudly instead of
// silently doing nothing and letting the expectations judge a different
// experiment than the one the script asked for.
func TestInjectionErrors(t *testing.T) {
	cases := []struct {
		name    string
		script  string
		wantErr string // substring of Run's error; "" means Run must succeed
		wantRT  string // substring required in Result.Errors; "" means none
	}{
		{
			name: "appcrash on gateway",
			script: "client download 1MiB\n" +
				"at 100ms appcrash gateway silent\n" +
				"run 5s\n",
			wantErr: "runs no server application",
		},
		{
			name: "appcrash on client",
			script: "client download 1MiB\n" +
				"at 100ms appcrash client cleanup\n" +
				"run 5s\n",
			wantErr: "runs no server application",
		},
		{
			name: "appcrash on absent witness",
			script: "client download 1MiB\n" +
				"at 100ms appcrash witness silent\n" +
				"run 5s\n",
			wantErr: "not present in this topology",
		},
		{
			name: "drop on witness (serial only, no ethernet)",
			script: "option witness\n" +
				"client download 1MiB\n" +
				"at 100ms drop witness 200ms\n" +
				"run 5s\n",
			wantErr: "no ethernet link",
		},
		{
			name: "drop with negative duration",
			script: "client download 1MiB\n" +
				"at 100ms drop client -100ms\n" +
				"run 5s\n",
			wantErr: "must be positive",
		},
		{
			name: "rejoin without takeover",
			script: "client download 1MiB\n" +
				"at 100ms rejoin\n" +
				"run 5s\n" +
				"expect clients-done\n",
			wantRT: "want taken-over",
		},
		{
			name: "clean script",
			script: "client download 1MiB\n" +
				"run 5s\n" +
				"expect clients-done\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc, err := Parse(tc.script)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			res, err := Run(sc)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("Run succeeded, want error containing %q", tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("Run error %q, want it to contain %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if tc.wantRT != "" {
				if len(res.Errors) == 0 {
					t.Fatalf("no runtime injection errors recorded, want one containing %q", tc.wantRT)
				}
				if !strings.Contains(res.Errors[0], tc.wantRT) {
					t.Fatalf("runtime error %q, want it to contain %q", res.Errors[0], tc.wantRT)
				}
				if res.OK() {
					t.Fatal("Result.OK() = true despite injection errors")
				}
				return
			}
			if len(res.Errors) != 0 {
				t.Fatalf("unexpected runtime errors: %v", res.Errors)
			}
			if !res.OK() {
				t.Fatalf("clean script failed: %+v", res.Checks)
			}
		})
	}
}
