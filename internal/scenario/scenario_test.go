package scenario

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestParseFullScript(t *testing.T) {
	text := `
# demo 1 as a script
option hb 500ms
option seed 7
option witness

client download 16MiB
at 500ms crash primary
run 30s
expect takeover
expect clients-done
`
	sc, err := Parse(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(sc.Statements) != 8 {
		t.Fatalf("statements = %d", len(sc.Statements))
	}
	if sc.Statements[0].OptionName != "hb" || sc.Statements[0].OptionValue != "500ms" {
		t.Fatalf("option 0 = %+v", sc.Statements[0])
	}
	cl := sc.Statements[3]
	if cl.Verb != VerbClient || cl.ClientKind != "download" || cl.Size != 16<<20 {
		t.Fatalf("client = %+v", cl)
	}
	at := sc.Statements[4]
	if at.Verb != VerbAt || at.When != 500*time.Millisecond || at.Action != "crash" || at.Target != "primary" {
		t.Fatalf("at = %+v", at)
	}
	if sc.Statements[5].RunFor != 30*time.Second {
		t.Fatalf("run = %+v", sc.Statements[5])
	}
	if sc.Statements[6].Cond != "takeover" || sc.Statements[7].Cond != "clients-done" {
		t.Fatal("expects wrong")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		text string
		want string
	}{
		{"bogus statement", "unknown statement"},
		{"client download 16MiB\noption hb 1s", "options must precede"},
		{"option hb soon", "bad duration"},
		{"option color blue", "usage: option"},
		{"client teleport 1MiB", "unknown client kind"},
		{"client echo ten 1KiB", "bad rounds"},
		{"at noon crash primary", "bad time"},
		{"at 1s crash mars", "unknown host"},
		{"at 1s appcrash primary loudly", "usage: appcrash"},
		{"at 1s explode primary", "unknown action"},
		{"at 1s drop primary", "usage: drop"},
		{"run", "usage: run"},
		{"expect victory", "unknown condition"},
		{"", "empty script"},
		{"at 1s serialcut now", "takes no arguments"},
	}
	for _, c := range cases {
		_, err := Parse(c.text)
		if err == nil {
			t.Errorf("%q: no error", c.text)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("%q: error is not a ParseError: %v", c.text, err)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error %q does not contain %q", c.text, err, c.want)
		}
	}
}

func TestParseSize(t *testing.T) {
	cases := map[string]int64{
		"512":   512,
		"512B":  512,
		"64KiB": 64 << 10,
		"16MiB": 16 << 20,
		"1GiB":  1 << 30,
		"0":     0,
	}
	for in, want := range cases {
		got, err := ParseSize(in)
		if err != nil || got != want {
			t.Errorf("ParseSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "x", "-5", "5TiB5"} {
		if _, err := ParseSize(bad); err == nil {
			t.Errorf("ParseSize(%q): no error", bad)
		}
	}
}

func TestRunDemo1Script(t *testing.T) {
	sc, err := Parse(`
client download 8MiB
at 300ms crash primary
run 60s
expect takeover
expect clients-done
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !res.OK() {
		t.Fatalf("checks failed: %+v", res.Checks)
	}
	if len(res.Clients) != 1 || !strings.Contains(res.Clients[0], "done=true") {
		t.Fatalf("client summary: %v", res.Clients)
	}
}

func TestRunTransientScript(t *testing.T) {
	sc, err := Parse(`
client echo 400 1KiB
at 1s drop backup 300ms
run 60s
expect no-failover
expect recovery
expect clients-done
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !res.OK() {
		for _, c := range res.Checks {
			t.Logf("line %d expect %s: passed=%v %s", c.Line, c.Cond, c.Passed, c.Detail)
		}
		t.Fatal("checks failed")
	}
}

func TestRunRejoinScript(t *testing.T) {
	sc, err := Parse(`
client download 4MiB
at 200ms crash primary
run 5s
expect takeover
at 5s rejoin
run 3s
expect active
expect clients-done
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !res.OK() {
		t.Fatalf("checks failed: %+v", res.Checks)
	}
}

func TestRunFailingExpectIsReported(t *testing.T) {
	sc, err := Parse(`
client download 1MiB
run 10s
expect takeover
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.OK() {
		t.Fatal("expect takeover passed without any failure injected")
	}
	if res.Checks[0].Detail == "" {
		t.Fatal("failed check has no detail")
	}
}

func TestRunRejectsMixedWorkloads(t *testing.T) {
	sc, err := Parse(`
client download 1MiB
client echo 10 1KiB
run 1s
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := Run(sc); err == nil {
		t.Fatal("mixed workloads accepted")
	}
}
