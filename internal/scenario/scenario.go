// Package scenario implements a small line-oriented language for scripting
// ST-TCP failure demonstrations, and an executor that runs scripts on the
// simulated testbed. It powers cmd/sttcp-lab: the conference-demo workflow
// of "start a workload, break something at a chosen moment, watch the
// client" as a reproducible text file.
//
// A script is a sequence of lines; '#' starts a comment. Three statement
// groups exist, in any order except that options must precede everything
// else:
//
//	option hb <duration>          heartbeat period (default 200ms)
//	option seed <int>             simulation seed (default 42)
//	option logger                 deploy the §4.3 logger machine
//	option witness                deploy the §4.2.2 witness replica
//	option maxdelayfin <duration> shrink the FIN gate for short runs
//	option suspicion              enable the gray-failure suspicion scorer
//
//	client download <size>        start a verified download (e.g. 16MiB)
//	client echo <rounds> <size>   start an echo session (e.g. 500 1KiB)
//
//	at <time> crash <host>        HW/OS crash (primary|backup|witness|gateway)
//	at <time> appcrash <host> <silent|cleanup>
//	at <time> nicfail <host>
//	at <time> drop <host> <dur>   drop all frames toward host for dur
//	at <time> serialcut           cut the null-modem cable (both ends)
//	at <time> starve <host> <factor> <dur>  CPU-starve host by factor for dur
//	at <time> reboot <host>
//	at <time> rejoin              reintegrate the rebooted machine as backup
//
//	run <duration>                advance virtual time
//	expect <cond>                 assert: takeover | non-ft | no-failover |
//	                              clients-done | recovery | active
//
// Times in `at` statements are absolute virtual times from the start of the
// run; the executor schedules them before the first `run`.
package scenario

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Verb enumerates statement kinds.
type Verb int

// Statement verbs.
const (
	VerbOption Verb = iota + 1
	VerbClient
	VerbAt
	VerbRun
	VerbExpect
)

// Statement is one parsed line.
type Statement struct {
	Line int
	Verb Verb

	// Option fields.
	OptionName  string
	OptionValue string

	// Client fields.
	ClientKind string // "download" | "echo"
	Size       int64  // bytes per download, or bytes per echo round
	Rounds     int    // echo only

	// At fields.
	When   time.Duration
	Action string  // crash|appcrash|nicfail|drop|serialcut|starve|reboot|rejoin
	Target string  // host name
	Arg    string  // appcrash mode, drop/starve duration
	Scale  float64 // starve factor

	// Run fields.
	RunFor time.Duration

	// Expect fields.
	Cond string
}

// Script is a parsed scenario.
type Script struct {
	Statements []Statement
}

// ParseError reports a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("scenario: line %d: %s", e.Line, e.Msg)
}

func errf(line int, format string, args ...any) error {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Parse reads a script from text.
func Parse(text string) (*Script, error) {
	var sc Script
	optionsDone := false
	for i, raw := range strings.Split(text, "\n") {
		line := i + 1
		if idx := strings.IndexByte(raw, '#'); idx >= 0 {
			raw = raw[:idx]
		}
		fields := strings.Fields(raw)
		if len(fields) == 0 {
			continue
		}
		st := Statement{Line: line}
		switch fields[0] {
		case "option":
			if optionsDone {
				return nil, errf(line, "options must precede other statements")
			}
			if err := parseOption(&st, fields); err != nil {
				return nil, err
			}
		case "client":
			optionsDone = true
			if err := parseClient(&st, fields); err != nil {
				return nil, err
			}
		case "at":
			optionsDone = true
			if err := parseAt(&st, fields); err != nil {
				return nil, err
			}
		case "run":
			optionsDone = true
			if len(fields) != 2 {
				return nil, errf(line, "usage: run <duration>")
			}
			d, err := time.ParseDuration(fields[1])
			if err != nil || d <= 0 {
				return nil, errf(line, "bad duration %q", fields[1])
			}
			st.Verb = VerbRun
			st.RunFor = d
		case "expect":
			optionsDone = true
			if len(fields) != 2 {
				return nil, errf(line, "usage: expect <condition>")
			}
			switch fields[1] {
			case "takeover", "non-ft", "no-failover", "clients-done", "recovery", "active":
				st.Verb = VerbExpect
				st.Cond = fields[1]
			default:
				return nil, errf(line, "unknown condition %q", fields[1])
			}
		default:
			return nil, errf(line, "unknown statement %q", fields[0])
		}
		sc.Statements = append(sc.Statements, st)
	}
	if len(sc.Statements) == 0 {
		return nil, errf(0, "empty script")
	}
	return &sc, nil
}

func parseOption(st *Statement, fields []string) error {
	st.Verb = VerbOption
	switch {
	case len(fields) == 2 && (fields[1] == "logger" || fields[1] == "witness" || fields[1] == "suspicion"):
		st.OptionName = fields[1]
	case len(fields) == 3 && (fields[1] == "hb" || fields[1] == "seed" || fields[1] == "maxdelayfin"):
		st.OptionName = fields[1]
		st.OptionValue = fields[2]
		switch fields[1] {
		case "hb", "maxdelayfin":
			if _, err := time.ParseDuration(fields[2]); err != nil {
				return errf(st.Line, "bad duration %q", fields[2])
			}
		case "seed":
			if _, err := strconv.ParseInt(fields[2], 10, 64); err != nil {
				return errf(st.Line, "bad seed %q", fields[2])
			}
		}
	default:
		return errf(st.Line, "usage: option hb <dur> | option seed <n> | option logger | option witness | option suspicion | option maxdelayfin <dur>")
	}
	return nil
}

func parseClient(st *Statement, fields []string) error {
	st.Verb = VerbClient
	if len(fields) < 3 {
		return errf(st.Line, "usage: client download <size> | client echo <rounds> <size>")
	}
	switch fields[1] {
	case "download":
		size, err := ParseSize(fields[2])
		if err != nil {
			return errf(st.Line, "bad size %q", fields[2])
		}
		st.ClientKind = "download"
		st.Size = size
	case "echo":
		if len(fields) != 4 {
			return errf(st.Line, "usage: client echo <rounds> <size>")
		}
		rounds, err := strconv.Atoi(fields[2])
		if err != nil || rounds <= 0 {
			return errf(st.Line, "bad rounds %q", fields[2])
		}
		size, err := ParseSize(fields[3])
		if err != nil {
			return errf(st.Line, "bad size %q", fields[3])
		}
		st.ClientKind = "echo"
		st.Rounds = rounds
		st.Size = size
	default:
		return errf(st.Line, "unknown client kind %q", fields[1])
	}
	return nil
}

func parseAt(st *Statement, fields []string) error {
	st.Verb = VerbAt
	if len(fields) < 3 {
		return errf(st.Line, "usage: at <time> <action> ...")
	}
	when, err := time.ParseDuration(fields[1])
	if err != nil || when < 0 {
		return errf(st.Line, "bad time %q", fields[1])
	}
	st.When = when
	st.Action = fields[2]
	rest := fields[3:]
	needsHost := func() error {
		if len(rest) < 1 {
			return errf(st.Line, "%s needs a host", st.Action)
		}
		switch rest[0] {
		case "primary", "backup", "witness", "gateway", "client":
			st.Target = rest[0]
			return nil
		default:
			return errf(st.Line, "unknown host %q", rest[0])
		}
	}
	switch st.Action {
	case "crash", "nicfail", "reboot":
		if err := needsHost(); err != nil {
			return err
		}
		if len(rest) != 1 {
			return errf(st.Line, "%s takes exactly one host", st.Action)
		}
	case "appcrash":
		if err := needsHost(); err != nil {
			return err
		}
		if len(rest) != 2 || (rest[1] != "silent" && rest[1] != "cleanup") {
			return errf(st.Line, "usage: appcrash <host> silent|cleanup")
		}
		st.Arg = rest[1]
	case "drop":
		if err := needsHost(); err != nil {
			return err
		}
		if len(rest) != 2 {
			return errf(st.Line, "usage: drop <host> <duration>")
		}
		if _, err := time.ParseDuration(rest[1]); err != nil {
			return errf(st.Line, "bad duration %q", rest[1])
		}
		st.Arg = rest[1]
	case "starve":
		if err := needsHost(); err != nil {
			return err
		}
		if len(rest) != 3 {
			return errf(st.Line, "usage: starve <host> <factor> <duration>")
		}
		scale, err := strconv.ParseFloat(rest[1], 64)
		if err != nil || scale < 1 {
			return errf(st.Line, "bad starve factor %q (want >= 1)", rest[1])
		}
		if _, err := time.ParseDuration(rest[2]); err != nil {
			return errf(st.Line, "bad duration %q", rest[2])
		}
		st.Scale = scale
		st.Arg = rest[2]
	case "serialcut", "rejoin":
		if len(rest) != 0 {
			return errf(st.Line, "%s takes no arguments", st.Action)
		}
	default:
		return errf(st.Line, "unknown action %q", st.Action)
	}
	return nil
}

// ParseSize parses sizes like "512", "64KiB", "16MiB", "1GiB".
func ParseSize(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "GiB"):
		mult, s = 1<<30, strings.TrimSuffix(s, "GiB")
	case strings.HasSuffix(s, "MiB"):
		mult, s = 1<<20, strings.TrimSuffix(s, "MiB")
	case strings.HasSuffix(s, "KiB"):
		mult, s = 1<<10, strings.TrimSuffix(s, "KiB")
	case strings.HasSuffix(s, "B"):
		s = strings.TrimSuffix(s, "B")
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("scenario: bad size %q", s)
	}
	return n * mult, nil
}
