package scenario

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/experiment"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/sttcp"
	"repro/internal/tcp"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Check is the outcome of one expect statement.
type Check struct {
	Line   int
	Cond   string
	Passed bool
	Detail string
}

// Result is what executing a script produced.
type Result struct {
	Checks  []Check
	Clients []string // one status line per workload
	Errors  []string // fault injections that failed at run time (e.g. rejoin with no takeover)
	Tracer  *trace.Recorder
	// Report is the run-report artifact: seed, scheduler, final metrics,
	// telemetry timeline (when RunOptions.TelemetryWindow sampled one),
	// and any failover anatomy the tracer assembled.
	Report *telemetry.Report
}

// OK reports whether every expectation passed and every scheduled fault
// actually took effect.
func (r *Result) OK() bool {
	if len(r.Errors) > 0 {
		return false
	}
	for _, c := range r.Checks {
		if !c.Passed {
			return false
		}
	}
	return true
}

// executor carries the run state.
type executor struct {
	tb        *experiment.Testbed
	lc        *experiment.Lifecycle
	start     time.Time
	downloads []*app.StreamClient
	echoes    []*app.EchoClient
	kind      string // "download" | "echo"
	mkApp     func(name string) func(*tcp.Conn)
	apps      map[string]crashable
	res       *Result
}

// RunOptions adjusts execution beyond what the script itself specifies.
type RunOptions struct {
	// TraceDetail enables per-segment trace events and segment-journey
	// spans, for runs whose trace will be exported (sttcp-lab's
	// -trace-out/-timeline flags set it).
	TraceDetail bool
	// Scheduler selects the simulator's event-queue implementation
	// (sttcp-lab's -scheduler flag sets it). Scripts run byte-identically
	// under either kind, so golden outputs never depend on it.
	Scheduler sim.SchedulerKind
	// TelemetryWindow, when > 0, samples every metric into windowed time
	// series at this period; the timeline lands in Result.Report.
	TelemetryWindow time.Duration
}

// Run executes a parsed script on a fresh simulated testbed.
func Run(sc *Script) (*Result, error) { return RunWith(sc, RunOptions{}) }

// RunWith is Run with execution options.
func RunWith(sc *Script, ro RunOptions) (*Result, error) {
	// Pass 1: options and workload-kind validation.
	opts := experiment.Options{Seed: 42, TraceDetail: ro.TraceDetail, Scheduler: ro.Scheduler,
		TelemetryWindow: ro.TelemetryWindow}
	hb := time.Duration(0)
	maxDelayFIN := time.Duration(0)
	suspicion := false
	kind := ""
	for _, st := range sc.Statements {
		switch st.Verb {
		case VerbOption:
			switch st.OptionName {
			case "hb":
				hb, _ = time.ParseDuration(st.OptionValue)
			case "maxdelayfin":
				maxDelayFIN, _ = time.ParseDuration(st.OptionValue)
			case "seed":
				opts.Seed, _ = strconv.ParseInt(st.OptionValue, 10, 64)
			case "logger":
				opts.WithLogger = true
			case "witness":
				opts.WithWitness = true
			case "suspicion":
				suspicion = true
			}
		case VerbClient:
			if kind != "" && kind != st.ClientKind {
				return nil, errf(st.Line, "cannot mix %s and %s workloads (one service protocol per script)", kind, st.ClientKind)
			}
			kind = st.ClientKind
		}
	}
	if kind == "" {
		kind = "download"
	}

	tb := experiment.Build(opts)
	err := tb.StartSTTCP(hb, func(c *sttcp.Config) {
		if maxDelayFIN > 0 {
			c.MaxDelayFIN = maxDelayFIN
		}
		if suspicion {
			c.Suspicion.Enabled = true
		}
	})
	if err != nil {
		return nil, err
	}
	ex := &executor{
		tb:    tb,
		lc:    experiment.NewLifecycle(tb),
		start: tb.Sim.Now(),
		kind:  kind,
		res:   &Result{Tracer: tb.Tracer},
	}
	ex.mkApp = func(name string) func(*tcp.Conn) {
		hostName := strings.TrimSuffix(name, "/app")
		host := tb.Backup
		if hostName == tb.Primary.Name() {
			host = tb.Primary
		}
		srv := ex.newServer(name, host)
		ex.apps[hostName] = srv
		return srv.Accept
	}
	ex.apps = map[string]crashable{}
	ex.installApp(tb.PrimaryNode, "primary")
	ex.installApp(tb.BackupNode, "backup")
	if tb.WitnessNode != nil {
		ex.installApp(tb.WitnessNode, "witness")
	}

	// Pass 2: execute in order.
	for _, st := range sc.Statements {
		var err error
		switch st.Verb {
		case VerbClient:
			err = ex.startClient(st)
		case VerbAt:
			err = ex.schedule(st)
		case VerbRun:
			err = tb.Run(st.RunFor)
		case VerbExpect:
			ex.evaluate(st)
		}
		if err != nil {
			return nil, fmt.Errorf("scenario: line %d: %w", st.Line, err)
		}
	}
	ex.summariseClients()
	snap := tb.Metrics.Snapshot()
	rep := &telemetry.Report{
		Version:    telemetry.ReportVersion,
		Demo:       "scenario",
		Seed:       opts.Seed,
		Scheduler:  ro.Scheduler.Resolve().String(),
		FinishedAt: snap.At,
		Metrics:    snap,
		Telemetry:  tb.Telemetry.Timeline(),
	}
	for _, a := range tb.Tracer.Anatomy() {
		rep.Anatomy = append(rep.Anatomy, telemetry.PhasesFromAnatomy(a))
	}
	ex.res.Report = rep
	return ex.res, nil
}

// crashable is the app-crash surface both server kinds share.
type crashable interface {
	CrashSilent()
	CrashCleanup(abort bool)
}

// appServer is the full server surface the executor drives: crashes, the
// accept hook, and the host CPU clock (so `starve` actually slows the
// application, not just a number on the host).
type appServer interface {
	crashable
	Accept(c *tcp.Conn)
	SetCPU(sm *sim.Simulator, cpu *sim.Clock)
}

func (ex *executor) newServer(name string, host *cluster.Host) appServer {
	var srv appServer
	if ex.kind == "echo" {
		srv = app.NewEchoServer(name, ex.tb.Tracer)
	} else {
		srv = app.NewDataServer(name, ex.tb.Tracer)
	}
	srv.SetCPU(ex.tb.Sim, host.CPU())
	return srv
}

func (ex *executor) installApp(node *sttcp.Node, host string) {
	srv := ex.newServer(host+"/app", node.Host())
	ex.apps[host] = srv
	node.OnAccept = srv.Accept
}

func (ex *executor) startClient(st Statement) error {
	switch st.ClientKind {
	case "download":
		cl := app.NewStreamClient(app.ClientConfig{
			Name: "client/app", Stack: ex.tb.Client.TCP(),
			Service: experiment.ServiceAddr, Port: experiment.ServicePort,
			Request: st.Size, Tracer: ex.tb.Tracer,
			Telemetry: ex.tb.Telemetry.NewClientTrack(),
		})
		if err := cl.Start(); err != nil {
			return err
		}
		ex.downloads = append(ex.downloads, cl)
	case "echo":
		cl := app.NewEchoClient("client/app", ex.tb.Client.TCP(),
			experiment.ServiceAddr, experiment.ServicePort, st.Rounds, int(st.Size), ex.tb.Tracer)
		cl.Gap = 5 * time.Millisecond
		cl.Telemetry = ex.tb.Telemetry.NewClientTrack()
		if err := cl.Start(); err != nil {
			return err
		}
		ex.echoes = append(ex.echoes, cl)
	}
	return nil
}

func (ex *executor) hostByName(name string) (h hostLike, link *netem.Link, ok bool) {
	switch name {
	case "primary":
		return ex.tb.Primary, ex.tb.PrimaryLink, true
	case "backup":
		return ex.tb.Backup, ex.tb.BackupLink, true
	case "gateway":
		return ex.tb.Gateway, ex.tb.GatewayLink, true
	case "client":
		return ex.tb.Client, ex.tb.ClientLink, true
	case "witness":
		if ex.tb.WitnessHost == nil {
			return nil, nil, false
		}
		return ex.tb.WitnessHost, nil, true
	}
	return nil, nil, false
}

// hostLike is the slice of cluster.Host the executor uses.
type hostLike interface {
	CrashHW()
	FailNIC()
	Reboot()
	SetCPUScale(r float64)
}

func (ex *executor) schedule(st Statement) error {
	when := ex.start.Add(st.When)
	host, link, ok := hostLike(nil), (*netem.Link)(nil), true
	if st.Target != "" {
		host, link, ok = ex.hostByName(st.Target)
		if !ok {
			return fmt.Errorf("host %q not present in this topology", st.Target)
		}
	}
	action := st.Action
	arg := st.Arg

	// Validate the injection up front: a fault that silently does nothing
	// makes every later expectation meaningless, so refuse to schedule it.
	var dropFor, starveFor time.Duration
	switch action {
	case "appcrash":
		if _, ok := ex.apps[st.Target]; !ok {
			return fmt.Errorf("appcrash: host %q runs no server application", st.Target)
		}
	case "starve":
		d, err := time.ParseDuration(arg)
		if err != nil {
			return fmt.Errorf("starve: bad duration %q: %w", arg, err)
		}
		if d <= 0 {
			return fmt.Errorf("starve: duration must be positive, got %v", d)
		}
		starveFor = d
	case "drop":
		if link == nil {
			return fmt.Errorf("drop: host %q has no ethernet link in this topology", st.Target)
		}
		d, err := time.ParseDuration(arg)
		if err != nil {
			return fmt.Errorf("drop: bad duration %q: %w", arg, err)
		}
		if d <= 0 {
			return fmt.Errorf("drop: duration must be positive, got %v", d)
		}
		dropFor = d
	}

	ex.tb.Sim.At(when, func() {
		switch action {
		case "crash":
			host.CrashHW()
		case "nicfail":
			host.FailNIC()
		case "reboot":
			host.Reboot()
		case "appcrash":
			srv := ex.apps[st.Target]
			if arg == "silent" {
				srv.CrashSilent()
			} else {
				srv.CrashCleanup(false)
			}
		case "starve":
			ex.tb.Tracer.Emit(trace.KindGeneric, st.Target, "CPU starved x%g for %v (slow-not-dead)", st.Scale, starveFor)
			host.SetCPUScale(st.Scale)
			ex.tb.Sim.At(when.Add(starveFor), func() { host.SetCPUScale(1) })
		case "drop":
			ex.tb.Tracer.Emit(trace.KindLinkDrop, st.Target+"/eth0", "dropping inbound frames for %v", dropFor)
			link.DropFromBFor(dropFor)
		case "serialcut":
			ex.tb.SerialPrimary.SetDown(true)
			ex.tb.SerialBackup.SetDown(true)
		case "rejoin":
			if err := ex.lc.Reintegrate(ex.mkApp); err != nil {
				ex.res.Errors = append(ex.res.Errors,
					fmt.Sprintf("line %d: rejoin at %v: %v", st.Line, st.When, err))
			}
		}
	})
	return nil
}

func (ex *executor) evaluate(st Statement) {
	check := Check{Line: st.Line, Cond: st.Cond}
	switch st.Cond {
	case "takeover":
		check.Passed = ex.tb.Tracer.Has(trace.KindTakeover)
		if !check.Passed {
			check.Detail = "no takeover event recorded"
		}
	case "non-ft":
		check.Passed = ex.tb.Tracer.Has(trace.KindNonFTMode)
		if !check.Passed {
			check.Detail = "primary never entered non-fault-tolerant mode"
		}
	case "no-failover":
		check.Passed = !ex.tb.Tracer.Has(trace.KindSuspect)
		if !check.Passed {
			e, _ := ex.tb.Tracer.First(trace.KindSuspect)
			check.Detail = "suspicion raised: " + e.Message
		}
	case "recovery":
		check.Passed = ex.tb.Tracer.Has(trace.KindByteRecovery)
		if !check.Passed {
			check.Detail = "no missed-byte recovery activity"
		}
	case "active":
		p, b := ex.lc.PrimaryNode().State(), ex.lc.BackupNode().State()
		check.Passed = p == sttcp.StateActive && b == sttcp.StateActive
		if !check.Passed {
			check.Detail = fmt.Sprintf("states %v/%v", p, b)
		}
	case "clients-done":
		check.Passed = true
		for i, cl := range ex.downloads {
			if !cl.Done || cl.Err != nil || cl.VerifyFailures != 0 {
				check.Passed = false
				check.Detail = fmt.Sprintf("download %d: done=%v err=%v", i, cl.Done, cl.Err)
			}
		}
		for i, cl := range ex.echoes {
			if !cl.Done || cl.Err != nil || cl.VerifyFailures != 0 {
				check.Passed = false
				check.Detail = fmt.Sprintf("echo %d: done=%v err=%v rounds=%d", i, cl.Done, cl.Err, cl.RoundsDone)
			}
		}
	}
	ex.res.Checks = append(ex.res.Checks, check)
}

func (ex *executor) summariseClients() {
	for i, cl := range ex.downloads {
		gap, _ := cl.MaxGap()
		ex.res.Clients = append(ex.res.Clients, fmt.Sprintf(
			"download %d: %d/%d bytes, done=%v, max stall %v, verify failures %d",
			i, cl.Received, cl.Request, cl.Done, gap.Round(time.Millisecond), cl.VerifyFailures))
	}
	for i, cl := range ex.echoes {
		gap, _ := cl.MaxGap()
		ex.res.Clients = append(ex.res.Clients, fmt.Sprintf(
			"echo %d: %d/%d rounds, done=%v, max stall %v, verify failures %d",
			i, cl.RoundsDone, cl.Rounds, cl.Done, gap.Round(time.Millisecond), cl.VerifyFailures))
	}
}
