package scenario

import (
	"os"
	"path/filepath"
	"testing"
)

// TestShippedScenarios parses and executes every script in the repository's
// scenarios/ directory, so the shipped demos cannot rot.
func TestShippedScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("shipped-scenario sweep skipped in -short")
	}
	dir := filepath.Join("..", "..", "scenarios")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read %s: %v", dir, err)
	}
	ran := 0
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".sttcp" {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			text, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			sc, err := Parse(string(text))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			res, err := Run(sc)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			for _, c := range res.Checks {
				if !c.Passed {
					t.Errorf("line %d: expect %s failed: %s", c.Line, c.Cond, c.Detail)
				}
			}
		})
		ran++
	}
	if ran < 5 {
		t.Fatalf("only %d shipped scenarios found", ran)
	}
}
