package scenario

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden trace files from the current run")

// condenseTrace reduces a full trace to its milestone event-kind sequence:
// high-frequency noise (heartbeats, retransmits, per-delivery progress,
// free-form generic notes) is dropped, and consecutive repeats of the same
// kind collapse to one line. What remains is the protocol's story — crash,
// suspect, takeover, recovery, connection lifecycle — which must not change
// unnoticed.
func condenseTrace(rec *trace.Recorder) string {
	noise := map[trace.Kind]bool{
		trace.KindGeneric:     true,
		trace.KindHBSent:      true,
		trace.KindHBReceived:  true,
		trace.KindRetransmit:  true,
		trace.KindAppProgress: true,
	}
	var b strings.Builder
	var last trace.Kind
	for _, e := range rec.Events() {
		if noise[e.Kind] || e.Kind == last {
			continue
		}
		b.WriteString(e.Kind.String())
		b.WriteByte('\n')
		last = e.Kind
	}
	return b.String()
}

// TestGoldenTraces runs every shipped scenario and compares its condensed
// event-kind sequence against a checked-in golden file, so any behavioural
// drift in the protocol shows up as a reviewable diff. Regenerate after an
// intentional change with:
//
//	go test ./internal/scenario -run Golden -update
func TestGoldenTraces(t *testing.T) {
	dir := filepath.Join("..", "..", "scenarios")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read %s: %v", dir, err)
	}
	ran := 0
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".sttcp" {
			continue
		}
		name := e.Name()
		ran++
		t.Run(name, func(t *testing.T) {
			text, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			sc, err := Parse(string(text))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			res, err := Run(sc)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			got := condenseTrace(res.Tracer)
			golden := filepath.Join("testdata", "golden", strings.TrimSuffix(name, ".sttcp")+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatalf("mkdir: %v", err)
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatalf("write golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("milestone trace drifted from %s.\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
	if ran < 8 {
		t.Fatalf("only %d scenarios covered by golden traces, want all 8", ran)
	}
}
