package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

// runShipped executes one scenario from the shipped scenarios/ directory.
func runShipped(t *testing.T, name string, ro RunOptions) *Result {
	t.Helper()
	text, err := os.ReadFile(filepath.Join("..", "..", "scenarios", name))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	sc, err := Parse(string(text))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := RunWith(sc, ro)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

// TestChromeTraceRoundTrip exports the demo1-failover scenario's span trace
// as Chrome trace-event JSON and feeds it back through the validator — the
// same check a Perfetto load would make, runnable in CI.
func TestChromeTraceRoundTrip(t *testing.T) {
	res := runShipped(t, "demo1-failover.sttcp", RunOptions{TraceDetail: true})
	var buf bytes.Buffer
	if err := res.Tracer.WriteChromeTrace(&buf, sim.Epoch); err != nil {
		t.Fatalf("export: %v", err)
	}
	n, err := trace.ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("exported trace does not validate: %v", err)
	}
	if n < 100 {
		t.Fatalf("suspiciously small trace: %d entries", n)
	}
	// A failover run must carry the anatomy spans.
	for _, want := range []string{"detection", "takeover", "retransmit-wait", "segment-journey"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("export lacks %q slices", want)
		}
	}
}

// TestTimelineGolden renders the demo1-failover scenario's span timeline at
// a fixed width and compares it against a checked-in golden, so the
// human-facing failover anatomy view cannot drift unreviewed. Regenerate
// after an intentional change with:
//
//	go test ./internal/scenario -run TimelineGolden -update
func TestTimelineGolden(t *testing.T) {
	res := runShipped(t, "demo1-failover.sttcp", RunOptions{})
	anatomies := res.Tracer.Anatomy()
	if len(anatomies) == 0 {
		t.Fatal("scenario produced no failover anatomy")
	}
	a := anatomies[0]
	got := res.Tracer.RenderSpanTimeline(trace.TimelineOptions{
		Start: a.FaultAt.Add(-150 * time.Millisecond),
		End:   a.ResumeTxAt.Add(250 * time.Millisecond),
		Width: 100,
		Epoch: sim.Epoch,
	})
	golden := filepath.Join("testdata", "golden", "demo1-failover.timeline")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("timeline drifted from %s.\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}
