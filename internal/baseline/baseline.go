// Package baseline implements what Demo 1 of the paper contrasts ST-TCP
// against: a conventional hot-backup deployment *without* TCP-layer fault
// tolerance. The same server application runs on both machines, but each
// listens on its own address; when the primary dies the client's TCP
// connection is simply gone, and a failover-aware client application must
// notice the stall, tear the connection down, reconnect to the backup's
// address, and resume the transfer at the application layer. The disruption
// is client-visible and requires client-side logic — exactly what ST-TCP
// eliminates.
package baseline

import (
	"fmt"
	"time"

	"repro/internal/app"
	"repro/internal/ip"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/trace"
)

// ReconnectClient downloads Request pattern bytes from a list of server
// addresses. It watches its own progress; when no data arrives for
// StallTimeout it declares the current server dead, aborts the connection,
// and reconnects to the next address, resuming at the byte where the
// transfer broke.
type ReconnectClient struct {
	sim    *sim.Simulator
	stack  *tcp.Stack
	tracer *trace.Recorder
	name   string

	servers []serverAddr
	current int

	// Request is the total bytes to download.
	Request int64
	// StallTimeout is the application-level failure detector.
	StallTimeout time.Duration

	conn *tcp.Conn

	// Received counts verified bytes across all connection attempts.
	Received int64
	// Samples is the progress series.
	Samples []app.ProgressSample
	// Reconnects counts failovers performed.
	Reconnects int
	Done       bool
	Err        error
	// VerifyFailures counts pattern mismatches (must stay 0).
	VerifyFailures int64
	// OnDone fires once at completion or terminal failure.
	OnDone func(err error)

	watchdog *sim.Event
	lastData time.Time
	started  time.Time
	finished time.Time
}

type serverAddr struct {
	addr ip.Addr
	port uint16
}

// NewReconnectClient builds a client that tries servers in order.
func NewReconnectClient(name string, stack *tcp.Stack, request int64, stallTimeout time.Duration, tracer *trace.Recorder) *ReconnectClient {
	if stallTimeout <= 0 {
		stallTimeout = 3 * time.Second
	}
	return &ReconnectClient{
		sim:          stack.Sim(),
		stack:        stack,
		tracer:       tracer,
		name:         name,
		Request:      request,
		StallTimeout: stallTimeout,
	}
}

// AddServer appends a server address to fail over to.
func (cl *ReconnectClient) AddServer(addr ip.Addr, port uint16) {
	cl.servers = append(cl.servers, serverAddr{addr: addr, port: port})
}

// Start begins the download from the first server.
func (cl *ReconnectClient) Start() error {
	if len(cl.servers) == 0 {
		return fmt.Errorf("baseline: %s: no servers configured", cl.name)
	}
	cl.started = cl.sim.Now()
	cl.lastData = cl.started
	return cl.connect()
}

func (cl *ReconnectClient) connect() error {
	srv := cl.servers[cl.current%len(cl.servers)]
	c, err := cl.stack.Dial(ip.Addr{}, srv.addr, srv.port)
	if err != nil {
		return fmt.Errorf("baseline: %s dial %v: %w", cl.name, srv.addr, err)
	}
	cl.conn = c
	remaining := cl.Request - cl.Received
	req := []byte(app.FormatResumeRequest(remaining, cl.Received))
	c.OnEstablished = func() {
		_, _ = c.Write(req)
	}
	c.OnReadable = func() { cl.readable(c) }
	c.OnClose = func(err error) { cl.connClosed(c, err) }
	cl.armWatchdog()
	return nil
}

func (cl *ReconnectClient) armWatchdog() {
	if cl.watchdog != nil {
		cl.sim.Cancel(cl.watchdog)
	}
	cl.watchdog = cl.sim.Schedule(cl.StallTimeout/4, cl.checkStall)
}

func (cl *ReconnectClient) checkStall() {
	cl.watchdog = nil
	if cl.Done {
		return
	}
	if cl.sim.Since(cl.lastData) >= cl.StallTimeout {
		cl.failover("no data for " + cl.StallTimeout.String())
		return
	}
	cl.armWatchdog()
}

// failover abandons the current connection and moves to the next server.
func (cl *ReconnectClient) failover(why string) {
	if cl.Done {
		return
	}
	if cl.tracer != nil {
		cl.tracer.Emit(trace.KindGeneric, cl.name, "reconnecting (#%d): %s", cl.Reconnects+1, why)
	}
	old := cl.conn
	cl.conn = nil
	if old != nil {
		old.OnClose = nil
		old.OnReadable = nil
		old.Abort()
	}
	cl.current++
	cl.Reconnects++
	if cl.Reconnects > 2*len(cl.servers)+4 {
		cl.finish(fmt.Errorf("baseline: %s: giving up after %d reconnects", cl.name, cl.Reconnects))
		return
	}
	cl.lastData = cl.sim.Now()
	if err := cl.connect(); err != nil {
		cl.finish(err)
	}
}

func (cl *ReconnectClient) connClosed(c *tcp.Conn, err error) {
	if cl.Done || c != cl.conn {
		return
	}
	if err == nil && cl.Received >= cl.Request {
		cl.finish(nil)
		return
	}
	why := "connection closed early"
	if err != nil {
		why = err.Error()
	}
	cl.failover(why)
}

func (cl *ReconnectClient) readable(c *tcp.Conn) {
	if cl.Done || c != cl.conn {
		return
	}
	buf := make([]byte, 32<<10)
	for {
		n, err := c.Read(buf)
		if n == 0 {
			_ = err // closure is handled via OnClose / connClosed
			return
		}
		if bad := app.VerifyPattern(cl.Received, buf[:n]); bad >= 0 {
			cl.VerifyFailures++
		}
		cl.Received += int64(n)
		cl.lastData = cl.sim.Now()
		cl.Samples = append(cl.Samples, app.ProgressSample{Time: cl.lastData, Bytes: cl.Received})
		if cl.Received >= cl.Request {
			_ = c.Close()
			cl.finish(nil)
			return
		}
	}
}

func (cl *ReconnectClient) finish(err error) {
	if cl.Done {
		return
	}
	cl.Done = true
	cl.Err = err
	cl.finished = cl.sim.Now()
	if cl.watchdog != nil {
		cl.sim.Cancel(cl.watchdog)
		cl.watchdog = nil
	}
	if cl.tracer != nil {
		if err == nil {
			cl.tracer.EmitValue(trace.KindAppDone, cl.name, cl.Received,
				"baseline client done: %d bytes, %d reconnect(s)", cl.Received, cl.Reconnects)
		} else {
			cl.tracer.Emit(trace.KindAppDone, cl.name, "baseline client failed: %v", err)
		}
	}
	if cl.OnDone != nil {
		cl.OnDone(err)
	}
}

// Elapsed is the transfer duration (through completion, or until now).
func (cl *ReconnectClient) Elapsed() time.Duration {
	end := cl.finished
	if end.IsZero() {
		end = cl.sim.Now()
	}
	return end.Sub(cl.started)
}

// MaxGap returns the largest interval between consecutive progress
// samples — the client-visible service disruption.
func (cl *ReconnectClient) MaxGap() (gap time.Duration, around time.Time) {
	prev := cl.started
	for _, s := range cl.Samples {
		if d := s.Time.Sub(prev); d > gap {
			gap = d
			around = prev.Add(d / 2)
		}
		prev = s.Time
	}
	return gap, around
}

// GapAfter returns the stall observed around time t.
func (cl *ReconnectClient) GapAfter(t time.Time) (time.Duration, bool) {
	last := cl.started
	for _, s := range cl.Samples {
		if s.Time.After(t) {
			return s.Time.Sub(last), true
		}
		last = s.Time
	}
	return 0, false
}
