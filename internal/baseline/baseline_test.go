package baseline

import (
	"testing"
	"time"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/ip"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/trace"
)

var (
	clientAddr = ip.MakeAddr(10, 0, 0, 1)
	srv1Addr   = ip.MakeAddr(10, 0, 0, 2)
	srv2Addr   = ip.MakeAddr(10, 0, 0, 3)
)

type fixture struct {
	sim        *sim.Simulator
	tracer     *trace.Recorder
	client     *cluster.Host
	srv1, srv2 *cluster.Host
	app1, app2 *app.DataServer
}

func newFixture(t *testing.T, seed int64) *fixture {
	t.Helper()
	s := sim.New(seed)
	tr := trace.NewRecorder(s.Now)
	sw := netem.NewSwitch(s, "sw", time.Microsecond)
	f := &fixture{
		sim:    s,
		tracer: tr,
		client: cluster.New(s, cluster.HostConfig{Name: "client", EthNum: 1, Addr: clientAddr, Tracer: tr}),
		srv1:   cluster.New(s, cluster.HostConfig{Name: "srv1", EthNum: 2, Addr: srv1Addr, Tracer: tr}),
		srv2:   cluster.New(s, cluster.HostConfig{Name: "srv2", EthNum: 3, Addr: srv2Addr, Tracer: tr}),
	}
	for _, h := range []*cluster.Host{f.client, f.srv1, f.srv2} {
		h.ConnectToSwitch(sw, netem.DefaultLANConfig())
	}
	f.app1 = app.NewDataServer("srv1/app", tr)
	f.app2 = app.NewDataServer("srv2/app", tr)
	l1, err := f.srv1.TCP().Listen(srv1Addr, 80)
	if err != nil {
		t.Fatalf("listen srv1: %v", err)
	}
	l1.OnEstablished = f.app1.Accept
	l2, err := f.srv2.TCP().Listen(srv2Addr, 80)
	if err != nil {
		t.Fatalf("listen srv2: %v", err)
	}
	l2.OnEstablished = f.app2.Accept
	return f
}

func newClient(f *fixture, size int64, stall time.Duration) *ReconnectClient {
	cl := NewReconnectClient("client/app", f.client.TCP(), size, stall, f.tracer)
	cl.AddServer(srv1Addr, 80)
	cl.AddServer(srv2Addr, 80)
	return cl
}

func TestNoFailureNoReconnect(t *testing.T) {
	f := newFixture(t, 1)
	cl := newClient(f, 4<<20, 3*time.Second)
	if err := cl.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	_ = f.sim.Run(time.Minute)
	if !cl.Done || cl.Err != nil || cl.VerifyFailures != 0 {
		t.Fatalf("done=%v err=%v", cl.Done, cl.Err)
	}
	if cl.Reconnects != 0 {
		t.Fatalf("reconnected %d times without a failure", cl.Reconnects)
	}
}

// TestReconnectAndResume: the first server crashes mid-transfer; the client
// must detect the stall, move to the second server, and resume at the
// break point with the pattern intact.
func TestReconnectAndResume(t *testing.T) {
	f := newFixture(t, 2)
	cl := newClient(f, 16<<20, 2*time.Second)
	if err := cl.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	f.sim.Schedule(400*time.Millisecond, f.srv1.CrashHW)
	_ = f.sim.Run(5 * time.Minute)
	if !cl.Done || cl.Err != nil {
		t.Fatalf("done=%v err=%v received=%d", cl.Done, cl.Err, cl.Received)
	}
	if cl.VerifyFailures != 0 {
		t.Fatal("resumed stream did not match the pattern")
	}
	if cl.Reconnects != 1 {
		t.Fatalf("reconnects = %d, want 1", cl.Reconnects)
	}
	// Both servers must have served something (the resume actually
	// happened rather than a restart from the first server).
	if f.app1.BytesServed == 0 || f.app2.BytesServed == 0 {
		t.Fatalf("served: srv1=%d srv2=%d", f.app1.BytesServed, f.app2.BytesServed)
	}
	if f.app1.BytesServed+f.app2.BytesServed >= 2*(16<<20) {
		t.Fatalf("transfer restarted instead of resuming: %d + %d",
			f.app1.BytesServed, f.app2.BytesServed)
	}
	gap, _ := cl.MaxGap()
	if gap < 2*time.Second {
		t.Fatalf("disruption %v below the stall timeout — detector did not govern", gap)
	}
}

// TestFirstServerDeadAtStart: the dial itself fails over.
func TestFirstServerDeadAtStart(t *testing.T) {
	f := newFixture(t, 3)
	f.srv1.CrashHW()
	cl := newClient(f, 1<<20, time.Second)
	if err := cl.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	_ = f.sim.Run(5 * time.Minute)
	if !cl.Done || cl.Err != nil {
		t.Fatalf("done=%v err=%v", cl.Done, cl.Err)
	}
	if cl.Reconnects == 0 {
		t.Fatal("never failed over from the dead first server")
	}
	if f.app2.BytesServed == 0 {
		t.Fatal("second server served nothing")
	}
}

// TestAllServersDeadGivesUp: bounded retries, terminal error.
func TestAllServersDeadGivesUp(t *testing.T) {
	f := newFixture(t, 4)
	f.srv1.CrashHW()
	f.srv2.CrashHW()
	cl := newClient(f, 1<<20, 500*time.Millisecond)
	if err := cl.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	_ = f.sim.Run(10 * time.Minute)
	if !cl.Done {
		t.Fatal("client never gave up")
	}
	if cl.Err == nil {
		t.Fatal("client reported success with every server dead")
	}
}
