package icmp

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestEchoRoundtrip(t *testing.T) {
	e := Echo{Type: TypeEchoRequest, ID: 7, Seq: 3, Payload: []byte("ping")}
	got, err := Decode(e.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Type != e.Type || got.ID != e.ID || got.Seq != e.Seq || !bytes.Equal(got.Payload, e.Payload) {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", got, e)
	}
}

func TestEchoRoundtripProperty(t *testing.T) {
	fn := func(req bool, id, seq uint16, payload []byte) bool {
		e := Echo{Type: TypeEchoReply, ID: id, Seq: seq, Payload: payload}
		if req {
			e.Type = TypeEchoRequest
		}
		got, err := Decode(e.Encode())
		return err == nil && got.Type == e.Type && got.ID == e.ID &&
			got.Seq == e.Seq && bytes.Equal(got.Payload, e.Payload)
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptionDetected(t *testing.T) {
	e := Echo{Type: TypeEchoRequest, ID: 1, Seq: 1, Payload: []byte("xyz")}
	raw := e.Encode()
	raw[HeaderLen] ^= 0x55
	if _, err := Decode(raw); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("err = %v, want ErrBadChecksum", err)
	}
}

func TestTooShort(t *testing.T) {
	if _, err := Decode(make([]byte, HeaderLen-1)); !errors.Is(err, ErrTooShort) {
		t.Fatalf("err = %v, want ErrTooShort", err)
	}
}
