// Package icmp implements the ICMP echo (ping) messages used by ST-TCP's
// gateway-ping arbitration (paper §4.3): when the heartbeat fails on the IP
// link but survives on the serial link, both servers ping the gateway and
// exchange the results over the serial heartbeat to decide whose NIC died.
package icmp

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/ip"
)

// Type is the ICMP message type.
type Type uint8

// Message types used here.
const (
	TypeEchoReply   Type = 0
	TypeEchoRequest Type = 8
)

// String names the type.
func (t Type) String() string {
	switch t {
	case TypeEchoReply:
		return "echo-reply"
	case TypeEchoRequest:
		return "echo-request"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// HeaderLen is the length of an ICMP echo header.
const HeaderLen = 8

// Decoding errors.
var (
	ErrTooShort    = errors.New("icmp: message too short")
	ErrBadChecksum = errors.New("icmp: bad checksum")
)

// Echo is an ICMP echo request or reply.
type Echo struct {
	Type    Type
	ID      uint16
	Seq     uint16
	Payload []byte
}

// Encode serialises the message with its checksum.
func (e *Echo) Encode() []byte {
	buf := make([]byte, HeaderLen+len(e.Payload))
	buf[0] = uint8(e.Type)
	binary.BigEndian.PutUint16(buf[4:], e.ID)
	binary.BigEndian.PutUint16(buf[6:], e.Seq)
	copy(buf[HeaderLen:], e.Payload)
	binary.BigEndian.PutUint16(buf[2:], ip.Checksum(buf))
	return buf
}

// Decode parses and validates buf. The payload aliases buf.
func Decode(buf []byte) (Echo, error) {
	if len(buf) < HeaderLen {
		return Echo{}, fmt.Errorf("%w: %d bytes", ErrTooShort, len(buf))
	}
	if ip.Checksum(buf) != 0 {
		return Echo{}, ErrBadChecksum
	}
	return Echo{
		Type:    Type(buf[0]),
		ID:      binary.BigEndian.Uint16(buf[4:]),
		Seq:     binary.BigEndian.Uint16(buf[6:]),
		Payload: buf[HeaderLen:],
	}, nil
}
