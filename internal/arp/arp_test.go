package arp

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/eth"
	"repro/internal/ip"
)

func TestPacketRoundtrip(t *testing.T) {
	p := Packet{
		Op:       OpRequest,
		SenderHW: eth.MakeAddr(1),
		SenderIP: ip.MakeAddr(10, 0, 0, 1),
		TargetIP: ip.MakeAddr(10, 0, 0, 100),
	}
	got, err := Decode(p.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != p {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", got, p)
	}
}

func TestPacketRoundtripProperty(t *testing.T) {
	fn := func(op bool, shw, thw uint32, sip, tip [4]byte) bool {
		p := Packet{
			Op:       OpRequest,
			SenderHW: eth.MakeAddr(shw),
			TargetHW: eth.MakeAddr(thw),
			SenderIP: sip,
			TargetIP: tip,
		}
		if op {
			p.Op = OpReply
		}
		got, err := Decode(p.Encode())
		return err == nil && got == p
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsShort(t *testing.T) {
	if _, err := Decode(make([]byte, PacketLen-1)); !errors.Is(err, ErrPacketTooShort) {
		t.Fatalf("err = %v, want ErrPacketTooShort", err)
	}
}

func TestDecodeRejectsWrongHardware(t *testing.T) {
	p := Packet{Op: OpRequest}
	raw := p.Encode()
	raw[0] = 0xff // hardware type
	if _, err := Decode(raw); !errors.Is(err, ErrNotEthIPv4) {
		t.Fatalf("err = %v, want ErrNotEthIPv4", err)
	}
}

func TestTableLearnAndLookup(t *testing.T) {
	tbl := NewTable()
	a := ip.MakeAddr(10, 0, 0, 1)
	hw := eth.MakeAddr(1)
	if _, ok := tbl.Lookup(a); ok {
		t.Fatal("empty table resolved an address")
	}
	tbl.Learn(a, hw)
	got, ok := tbl.Lookup(a)
	if !ok || got != hw {
		t.Fatalf("lookup = %v, %v", got, ok)
	}
	hw2 := eth.MakeAddr(2)
	tbl.Learn(a, hw2)
	if got, _ := tbl.Lookup(a); got != hw2 {
		t.Fatal("dynamic entry was not updated by Learn")
	}
}

// TestStaticEntrySurvivesLearn checks the property the testbed depends on:
// the serviceIP→multiEA pin must never be displaced by dynamic traffic.
func TestStaticEntrySurvivesLearn(t *testing.T) {
	tbl := NewTable()
	service := ip.MakeAddr(10, 0, 0, 100)
	group := eth.MakeMulticastAddr(0x100)
	tbl.AddStatic(service, group)
	tbl.Learn(service, eth.MakeAddr(9))
	got, ok := tbl.Lookup(service)
	if !ok || got != group {
		t.Fatalf("static entry displaced: %v", got)
	}
	if !tbl.IsStatic(service) {
		t.Fatal("entry not reported static")
	}
	if tbl.Len() != 1 {
		t.Fatalf("len = %d, want 1", tbl.Len())
	}
}
