// Package arp implements the Address Resolution Protocol for the simulated
// stack: the wire format, a resolution table with static entries, and
// request/reply handling.
//
// The ST-TCP testbed (paper Figure 2) relies on a *static* ARP entry on the
// gateway/client mapping the service IP to a multicast Ethernet address so
// that frames for the service reach both the primary and the backup; the
// Table type supports exactly such pinned entries alongside dynamically
// learned ones.
package arp

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/eth"
	"repro/internal/ip"
)

// Op is the ARP operation code.
type Op uint16

// ARP operations.
const (
	OpRequest Op = 1
	OpReply   Op = 2
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpRequest:
		return "request"
	case OpReply:
		return "reply"
	default:
		return fmt.Sprintf("Op(%d)", uint16(o))
	}
}

// PacketLen is the length of an Ethernet/IPv4 ARP packet.
const PacketLen = 28

// Decoding errors.
var (
	ErrPacketTooShort = errors.New("arp: packet too short")
	ErrNotEthIPv4     = errors.New("arp: not an Ethernet/IPv4 ARP packet")
)

// Packet is an ARP request or reply for Ethernet/IPv4.
type Packet struct {
	Op       Op
	SenderHW eth.Addr
	SenderIP ip.Addr
	TargetHW eth.Addr
	TargetIP ip.Addr
}

// Encode serialises the packet.
func (p *Packet) Encode() []byte {
	buf := make([]byte, PacketLen)
	binary.BigEndian.PutUint16(buf[0:], 1) // hardware type: Ethernet
	binary.BigEndian.PutUint16(buf[2:], uint16(eth.TypeIPv4))
	buf[4] = eth.AddrLen
	buf[5] = ip.AddrLen
	binary.BigEndian.PutUint16(buf[6:], uint16(p.Op))
	copy(buf[8:], p.SenderHW[:])
	copy(buf[14:], p.SenderIP[:])
	copy(buf[18:], p.TargetHW[:])
	copy(buf[24:], p.TargetIP[:])
	return buf
}

// Decode parses buf into a packet.
func Decode(buf []byte) (Packet, error) {
	if len(buf) < PacketLen {
		return Packet{}, fmt.Errorf("%w: %d bytes", ErrPacketTooShort, len(buf))
	}
	if binary.BigEndian.Uint16(buf[0:]) != 1 ||
		binary.BigEndian.Uint16(buf[2:]) != uint16(eth.TypeIPv4) ||
		buf[4] != eth.AddrLen || buf[5] != ip.AddrLen {
		return Packet{}, ErrNotEthIPv4
	}
	var p Packet
	p.Op = Op(binary.BigEndian.Uint16(buf[6:]))
	copy(p.SenderHW[:], buf[8:])
	copy(p.SenderIP[:], buf[14:])
	copy(p.TargetHW[:], buf[18:])
	copy(p.TargetIP[:], buf[24:])
	return p, nil
}

// Table maps IPv4 addresses to Ethernet addresses. Static entries are never
// overwritten by learned ones — the testbed's serviceIP→multiEA mapping must
// survive ARP traffic from the servers themselves.
type Table struct {
	entries map[ip.Addr]entry
}

type entry struct {
	hw     eth.Addr
	static bool
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{entries: make(map[ip.Addr]entry)}
}

// AddStatic pins addr to hw; the entry cannot be displaced by Learn.
func (t *Table) AddStatic(addr ip.Addr, hw eth.Addr) {
	t.entries[addr] = entry{hw: hw, static: true}
}

// Learn records a dynamic mapping unless a static entry already exists.
func (t *Table) Learn(addr ip.Addr, hw eth.Addr) {
	if e, ok := t.entries[addr]; ok && e.static {
		return
	}
	t.entries[addr] = entry{hw: hw}
}

// Lookup resolves addr, reporting whether a mapping exists.
func (t *Table) Lookup(addr ip.Addr) (eth.Addr, bool) {
	e, ok := t.entries[addr]
	return e.hw, ok
}

// IsStatic reports whether addr has a pinned entry.
func (t *Table) IsStatic(addr ip.Addr) bool {
	e, ok := t.entries[addr]
	return ok && e.static
}

// Len reports the number of entries.
func (t *Table) Len() int { return len(t.entries) }
