package explore

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/sim"
)

// planOut is everything one synthetic run under the wrapper produced.
type planOut struct {
	order     []int   // event IDs in fire order
	atNS      []int64 // fire times, parallel to order
	choices   []Choice
	orderErrs []string
}

// runPlan drives a forking wrapper (or, with bare=true, an undecorated
// queue) through the event plan encoded in ops: each byte pair schedules
// a fan of 1–4 events at a shared delay, so same-timestamp tie groups are
// the common case, and the callbacks re-schedule follow-ups and cancel
// victims mid-run to exercise the wrapper's undecide and cancel paths.
// IDs are assigned deterministically from the plan, never from fire
// order, so two runs are comparable element-wise.
func runPlan(kind sim.SchedulerKind, bare bool, ops []byte, forced []int) planOut {
	var sched *Scheduler
	cfg := sim.Config{Seed: 1, Scheduler: kind}
	if !bare {
		sched = NewScheduler(kind, forced)
		cfg.Custom = sched
	}
	s := sim.NewWithConfig(cfg)

	var out planOut
	var evs []*sim.Event
	fired := map[int]bool{}
	cancelled := map[int]bool{}

	var fire func(id int) func()
	fire = func(id int) func() {
		return func() {
			fired[id] = true
			out.order = append(out.order, id)
			out.atNS = append(out.atNS, int64(s.Elapsed()))
			if id < len(evs) {
				// Follow-ups land 0–2 ms out, often tying with pending
				// events (or with the decided head — the undecide path).
				if id%4 == 1 {
					s.Schedule(time.Duration(id%3)*time.Millisecond, fire(1000+id))
				}
				// Cancel a deterministic victim if it is still pending.
				if id%3 == 0 && len(evs) > 0 {
					v := (id * 7) % len(evs)
					if !fired[v] && !cancelled[v] {
						s.Cancel(evs[v])
						cancelled[v] = true
					}
				}
			}
		}
	}

	id := 0
	for i := 0; i+1 < len(ops); i += 2 {
		delay := time.Duration(ops[i]%50) * time.Millisecond
		fan := 1 + int(ops[i+1]%4)
		for k := 0; k < fan; k++ {
			evs = append(evs, s.Schedule(delay, fire(id)))
			id++
		}
	}
	if err := s.RunUntilIdle(100_000); err != nil {
		panic(err)
	}
	if sched != nil {
		out.choices = sched.Choices()
		out.orderErrs = sched.OrderViolations()
	}

	// Conservation: every planned event either fired or was cancelled
	// before firing, never both, never neither.
	for i := 0; i < id; i++ {
		if fired[i] == cancelled[i] {
			panic("event neither fired nor cancelled, or both")
		}
	}
	return out
}

// FuzzExploreChoices feeds the forking wrapper random event plans and
// random choice sequences and holds it to its contract: time never goes
// backward, every recorded choice is well-formed, replaying the recorded
// picks reproduces the run exactly, the same forced sequence yields the
// same order over either inner queue, and with no forced choices the
// wrapper is invisible next to the bare scheduler.
func FuzzExploreChoices(f *testing.F) {
	f.Add([]byte{10, 3, 10, 3, 20, 2, 0, 1}, []byte{1, 0, 2})
	f.Add([]byte{5, 4, 5, 4, 5, 4, 5, 4, 30, 1}, []byte{3, 3, 3, 3, 3, 3})
	f.Add([]byte{0, 4, 0, 4}, []byte{})
	f.Add([]byte{49, 2, 49, 2, 49, 2, 7, 1, 7, 3}, []byte{255, 128, 7, 0, 9})

	f.Fuzz(func(t *testing.T, ops []byte, prefix []byte) {
		if len(ops) > 64 {
			ops = ops[:64]
		}
		if len(prefix) > 64 {
			prefix = prefix[:64]
		}
		forced := make([]int, len(prefix))
		for i, b := range prefix {
			forced[i] = int(int8(b)) // negatives included: the wrapper must normalise
		}

		got := runPlan(sim.SchedulerHeap, false, ops, forced)

		if len(got.orderErrs) != 0 {
			t.Fatalf("virtual time went backward: %v", got.orderErrs)
		}
		for i := 1; i < len(got.atNS); i++ {
			if got.atNS[i] < got.atNS[i-1] {
				t.Fatalf("fire %d at t=%d after t=%d", i, got.atNS[i], got.atNS[i-1])
			}
		}
		picks := make([]int, len(got.choices))
		for i, c := range got.choices {
			if c.N < 2 || c.Picked < 0 || c.Picked >= c.N || len(c.Ctxs) != c.N {
				t.Fatalf("malformed choice %d: %+v", i, c)
			}
			picks[i] = c.Picked
		}

		// Replaying the recorded picks reproduces the run bit for bit.
		replay := runPlan(sim.SchedulerHeap, false, ops, picks)
		if !reflect.DeepEqual(replay.order, got.order) {
			t.Fatalf("replay diverged:\n  got:    %v\n  replay: %v", got.order, replay.order)
		}
		if !reflect.DeepEqual(replay.choices, got.choices) {
			t.Fatalf("replay recorded different choices")
		}

		// The forced order is a property of the choices, not the inner
		// queue implementation.
		cal := runPlan(sim.SchedulerCalendar, false, ops, forced)
		if !reflect.DeepEqual(cal.order, got.order) {
			t.Fatalf("inner queues diverged under the same forced sequence:\n  heap:     %v\n  calendar: %v", got.order, cal.order)
		}

		// With nothing forced the wrapper is invisible.
		wrapped := runPlan(sim.SchedulerHeap, false, ops, nil)
		bareRun := runPlan(sim.SchedulerHeap, true, ops, nil)
		if !reflect.DeepEqual(wrapped.order, bareRun.order) {
			t.Fatalf("empty-prefix wrapper diverged from bare queue:\n  wrapped: %v\n  bare:    %v", wrapped.order, bareRun.order)
		}
	})
}
