package explore

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden minimal-schedule file from the current run")

// TestGoldenSeededRewindBug reintroduces the calendar queue's historical
// rewind-strand bug behind its test hook and demands that the explorer
// (a) finds a violating interleaving and (b) shrinks it to the exact
// minimal schedule checked into testdata/golden. The bug leaves rewound
// entries stranded in overflow so pops come out of order and the virtual
// clock steps backward — invisible to every end-state invariant (the
// queue self-heals at the next re-anchor) but caught by the wrapper's
// scheduler-order audit on the very first run.
//
// Regenerate after an intentional change with:
//
//	go test ./internal/explore -run Golden -update
func TestGoldenSeededRewindBug(t *testing.T) {
	defer sim.SetRewindStrandBugForTest(sim.SetRewindStrandBugForTest(true))

	cfg := smallWindow(sim.SchedulerCalendar)
	res, err := Explore(cfg)
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if len(res.Violations) == 0 {
		t.Fatalf("explorer missed the seeded rewind-strand bug:\n%s", res.Report())
	}

	got := renderViolation(res.Violations[0])
	golden := filepath.Join("testdata", "golden", "rewind-strand.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("minimal reproduction drifted from %s.\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}

	// The shrink must also be stable: a second exploration lands on the
	// byte-identical minimal reproduction.
	again, err := Explore(cfg)
	if err != nil {
		t.Fatalf("second explore: %v", err)
	}
	if len(again.Violations) == 0 {
		t.Fatalf("second exploration missed the bug")
	}
	if r2 := renderViolation(again.Violations[0]); r2 != got {
		t.Errorf("shrink is unstable across runs:\n--- first ---\n%s--- second ---\n%s", got, r2)
	}
}

// renderViolation is the golden surface: the minimal schedule, the
// minimal choice prefix, and the set of invariants broken — everything a
// developer needs to reproduce, nothing volatile enough to churn.
func renderViolation(v ViolationRun) string {
	names := map[string]bool{}
	for _, viol := range v.Result.Violations {
		names[viol.Invariant] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	var b strings.Builder
	fmt.Fprintf(&b, "schedule: %v\n", v.ShrunkSchedule)
	fmt.Fprintf(&b, "prefix: %v\n", v.MinPrefix)
	fmt.Fprintf(&b, "invariants: %s\n", strings.Join(sorted, " "))
	return b.String()
}

// TestSeededBugInvisibleWithoutAudit documents why the wrapper's order
// audit exists: the strand self-heals at the next re-anchor, so the same
// buggy run sails through every end-state invariant. Only the
// scheduler-order audit separates the two runs.
func TestSeededBugInvisibleWithoutAudit(t *testing.T) {
	defer sim.SetRewindStrandBugForTest(sim.SetRewindStrandBugForTest(true))

	res, err := Explore(smallWindow(sim.SchedulerCalendar))
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if len(res.Violations) == 0 {
		t.Fatalf("no violation found")
	}
	for _, viol := range res.Violations[0].Result.Violations {
		if viol.Invariant != "scheduler-order" {
			t.Errorf("seeded bug tripped end-state invariant %q; the audit is no longer the only detector (update the doc comment)", viol.Invariant)
		}
		if !strings.Contains(viol.Detail, "virtual time went backward") {
			t.Errorf("audit detail %q does not describe the misordering", viol.Detail)
		}
	}
}

// TestGoldenBugOffStillCloses proves the golden path is the bug's fault:
// with the hook off, the identical calendar-scheduler exploration closes
// with zero violations.
func TestGoldenBugOffStillCloses(t *testing.T) {
	res, err := Explore(smallWindow(sim.SchedulerCalendar))
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if len(res.Violations) != 0 || !res.FullyClosed {
		t.Fatalf("bug-off calendar exploration: closed=%v violations=%d\n%s",
			res.FullyClosed, len(res.Violations), res.Report())
	}
}
