package explore

import (
	"time"

	"repro/internal/experiment"
)

// Summary digests the result into the experiment registry's shape.
func (r *Result) Summary() *experiment.ExploreSummary {
	return &experiment.ExploreSummary{
		Interleavings: r.Interleavings,
		FaultPoints:   r.FaultPoints,
		ChoicePoints:  r.ChoicePoints,
		Pruned:        r.Pruned,
		Deduped:       r.Deduped,
		Frontier:      r.Frontier,
		FullyClosed:   r.FullyClosed,
		Violations:    len(r.Violations),
	}
}

// The explore demo rides the standard registry so sttcp-demo can run a
// bounded exploration alongside the paper demos. Registered from init
// because experiment sits below explore in the import graph.
func init() {
	experiment.Register(experiment.Demo{
		Name:     "explore",
		Title:    "exhaustive interleaving exploration of the failover window",
		Extended: true,
		Run: func(p experiment.Params) (experiment.Result, error) {
			// The demo's window is sized to close: a 4 ms fault window
			// with a 10 ms forking grace exhausts in a couple of seconds,
			// so the audience sees an actual closure verdict rather than a
			// truncated frontier. Wider windows are the CLI's business.
			r, err := Explore(Config{
				Seed:           p.Seed,
				Scheduler:      p.Scheduler,
				Workers:        p.Workers,
				FaultSpan:      4 * time.Millisecond,
				Grace:          10 * time.Millisecond,
				MaxFaultPoints: 2,
			})
			if err != nil {
				return experiment.Result{Demo: "explore"}, err
			}
			return experiment.Result{Demo: "explore", Explore: r.Summary()}, nil
		},
	})
}
