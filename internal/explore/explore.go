package explore

import (
	"fmt"
	"hash/fnv"
	"io"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// Config bounds one exploration. The zero value explores a single-
// connection echo workload around one serving-side crash with the
// defaults below; every knob exists so tests and the CLI can trade
// coverage for wall-clock.
type Config struct {
	// Seed drives the testbed simulation of every run.
	Seed int64
	// Scheduler is the inner event-queue kind the forking wrapper
	// decorates (default resolves to the heap).
	Scheduler sim.SchedulerKind

	// Rounds and MsgSize parameterise the echo workload (defaults 300
	// rounds of 512 B — long enough that the client is mid-workload
	// through the whole takeover).
	Rounds  int
	MsgSize int

	// FaultKinds lists the faults to place at each enumerated boundary
	// (default: a serving-side machine crash).
	FaultKinds []chaos.EventKind
	// FaultAt and FaultSpan bound the fault-placement window
	// [FaultAt, FaultAt+FaultSpan): a probe run collects the distinct
	// event times inside it and each becomes a candidate injection point.
	// Defaults 300 ms + 30 ms — the paper's connection-established,
	// transfer-in-flight regime.
	FaultAt   time.Duration
	FaultSpan time.Duration
	// MaxFaultPoints caps the boundary enumeration by even striding
	// (default 6). Capping is reported, not silent: Result.Boundaries
	// holds what was actually used.
	MaxFaultPoints int

	// Grace extends tie-break forking past the fault window so the
	// takeover itself is explored: choices are forked in
	// [FaultAt, FaultAt+FaultSpan+Grace). Default 1.4 s, the
	// takeover-latency invariant bound (HB timeout + period + 600 ms).
	Grace time.Duration

	// MaxPrefix caps the choice-prefix length (default 64); deeper
	// branch points are counted as truncations and void the closure
	// claim rather than silently narrowing it.
	MaxPrefix int
	// MaxRuns caps total run executions (default 2000).
	MaxRuns int
	// MaxViolations stops the exploration after this many violating
	// interleavings have been found and shrunk (default 1).
	MaxViolations int
	// Workers bounds the replay worker pool (0 = fully parallel, 1 =
	// serial). The explored set and all counters are identical for every
	// setting: batches merge in input order.
	Workers int

	// NoPrune disables independence pruning and NoDedup disables
	// fingerprint dedup — the switches that re-verify a closure claim
	// without the engineered approximations.
	NoPrune bool
	NoDedup bool

	// ShrinkBudget bounds the re-runs spent minimising each violation
	// (default 25, shared between schedule and prefix shrinking).
	ShrinkBudget int

	// Stop, when non-nil, is polled between batches; returning true
	// abandons the frontier (reported, not FullyClosed). The CLI wires a
	// wall-clock budget here so the package itself never reads the wall.
	Stop func() bool
}

func (c Config) withDefaults() Config {
	if c.Rounds == 0 {
		c.Rounds = 300
	}
	if c.MsgSize == 0 {
		c.MsgSize = 512
	}
	if len(c.FaultKinds) == 0 {
		c.FaultKinds = []chaos.EventKind{chaos.EvCrashServing}
	}
	if c.FaultAt == 0 {
		c.FaultAt = 300 * time.Millisecond
	}
	if c.FaultSpan == 0 {
		c.FaultSpan = 30 * time.Millisecond
	}
	if c.MaxFaultPoints == 0 {
		c.MaxFaultPoints = 6
	}
	if c.Grace == 0 {
		c.Grace = 1400 * time.Millisecond
	}
	if c.MaxPrefix == 0 {
		c.MaxPrefix = 64
	}
	if c.MaxRuns == 0 {
		c.MaxRuns = 2000
	}
	if c.MaxViolations == 0 {
		c.MaxViolations = 1
	}
	if c.ShrinkBudget == 0 {
		c.ShrinkBudget = 25
	}
	return c
}

// ViolationRun is one interleaving that broke an invariant, with its
// minimised reproduction.
type ViolationRun struct {
	// Schedule and Prefix are the violating run as first found.
	Schedule chaos.Schedule
	Prefix   []int
	// ShrunkSchedule and MinPrefix are the minimised reproduction:
	// greedy event removal with the prefix pinned, then greedy trailing-
	// prefix truncation on the shrunk schedule. Both are deterministic.
	ShrunkSchedule chaos.Schedule
	MinPrefix      []int
	// Result is the minimal failing run (Report() renders its timeline).
	Result *chaos.RunResult
	// ShrinkRuns is how many re-executions the minimisation spent.
	ShrinkRuns int
}

// Result is one exploration's outcome.
type Result struct {
	// Base is the fault-free schedule the probe ran.
	Base chaos.Schedule
	// Boundaries are the fault points actually enumerated (post-stride).
	Boundaries []time.Duration

	// Interleavings counts distinct executed runs (probe included,
	// shrink re-runs excluded). FaultPoints is |Boundaries|×|FaultKinds|.
	Interleavings int
	FaultPoints   int
	// ChoicePoints totals the in-window multi-way tie groups observed
	// across all runs; Pruned counts alternatives skipped as
	// independent, Deduped counts runs whose outcome fingerprint was
	// already known, Truncated counts branch points beyond MaxPrefix.
	ChoicePoints int
	Pruned       int
	Deduped      int
	Truncated    int

	// Frontier is the number of unexplored (schedule, prefix) candidates
	// left when the exploration stopped; FullyClosed reports that the
	// frontier drained with zero truncations and no early stop — the
	// bounded window's interleaving space is exhausted.
	Frontier    int
	FullyClosed bool

	Violations []ViolationRun
}

// job is one frontier entry: a schedule plus the choice prefix to force.
type job struct {
	sc     chaos.Schedule
	prefix []int
}

// runOut is one executed run with the wrapper's recordings.
type runOut struct {
	res        *chaos.RunResult
	choices    []Choice
	boundaries []int64
}

type explorer struct {
	cfg      Config
	winLo    int64 // fault window start, ns
	winHi    int64 // fault window end, ns
	choiceHi int64 // forking window end (winHi + grace), ns
	seen     map[uint64]bool
}

// Explore runs the systematic exploration and returns its results. The
// whole exploration is deterministic in Config (Stop aside): the same
// inputs enumerate the same interleavings in the same order.
func Explore(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	e := &explorer{
		cfg:      cfg,
		winLo:    cfg.FaultAt.Nanoseconds(),
		winHi:    (cfg.FaultAt + cfg.FaultSpan).Nanoseconds(),
		choiceHi: (cfg.FaultAt + cfg.FaultSpan + cfg.Grace).Nanoseconds(),
		seen:     make(map[uint64]bool),
	}
	base := BaseSchedule(cfg)
	res := &Result{Base: base}

	// Probe: the fault-free run that discovers the event boundaries
	// inside the fault window. Its tie-breaks follow canonical order; the
	// fault axis, not the probe, is what gets forked.
	probe, err := e.execute(base, nil)
	if err != nil {
		return nil, err
	}
	res.Interleavings++
	res.ChoicePoints += len(probe.choices)
	if probe.res.Failed() {
		// The baseline itself violates — the golden seeded-bug test's
		// path. Minimise and report; there is no fault axis to explore.
		if err := e.recordViolation(res, base, nil, probe); err != nil {
			return nil, err
		}
		return res, nil
	}

	bounds := stride(probe.boundaries, cfg.MaxFaultPoints)
	for _, b := range bounds {
		res.Boundaries = append(res.Boundaries, time.Duration(b))
	}
	res.FaultPoints = len(bounds) * len(cfg.FaultKinds)

	var frontier []job
	for _, kind := range cfg.FaultKinds {
		for _, b := range bounds {
			sc := base
			sc.Events = append(append([]chaos.Event{}, base.Events...),
				chaos.Event{At: time.Duration(b), Kind: kind})
			frontier = append(frontier, job{sc: sc})
		}
	}

	for len(frontier) > 0 {
		if cfg.Stop != nil && cfg.Stop() {
			res.Frontier = len(frontier)
			return res, nil
		}
		n := batchSize(cfg.Workers)
		if room := cfg.MaxRuns - res.Interleavings; room < n {
			n = room
		}
		if n <= 0 {
			res.Frontier = len(frontier)
			return res, nil
		}
		if n > len(frontier) {
			n = len(frontier)
		}
		batch := frontier[:n]
		frontier = frontier[n:]

		outs, err := sweep.Run(cfg.Workers, sweep.Seeds(0, len(batch)), func(i int64) (*runOut, error) {
			j := batch[int(i)]
			return e.execute(j.sc, j.prefix)
		})
		if err != nil {
			return nil, err
		}
		for i, out := range outs {
			j := batch[i]
			res.Interleavings++
			res.ChoicePoints += len(out.choices)

			if out.res.Failed() {
				if err := e.recordViolation(res, j.sc, j.prefix, out); err != nil {
					return nil, err
				}
				if len(res.Violations) >= cfg.MaxViolations {
					res.Frontier = len(frontier) + len(outs) - i - 1
					return res, nil
				}
				continue
			}
			if !cfg.NoDedup {
				fp := fingerprint(j.sc, out.res, out.choices)
				if e.seen[fp] {
					res.Deduped++
					continue
				}
				e.seen[fp] = true
			}
			frontier = append(frontier, e.extend(res, j, out)...)
		}
	}
	res.FullyClosed = res.Truncated == 0 && len(res.Violations) == 0
	return res, nil
}

// extend enumerates the untaken alternatives of one passing run: for
// every in-window multi-way tie group at or past the forced prefix, each
// alternative index becomes a new frontier entry whose prefix replays
// the run's actual picks up to that group and then diverges.
func (e *explorer) extend(res *Result, j job, out *runOut) []job {
	var next []job
	for ci := len(j.prefix); ci < len(out.choices); ci++ {
		c := out.choices[ci]
		if !e.cfg.NoPrune && independent(out.res.Trace, c.Ctxs) {
			res.Pruned += c.N - 1
			continue
		}
		if ci+1 > e.cfg.MaxPrefix {
			res.Truncated++
			continue
		}
		for alt := 0; alt < c.N; alt++ {
			if alt == c.Picked {
				continue
			}
			prefix := make([]int, ci+1)
			for k := 0; k < ci; k++ {
				prefix[k] = out.choices[k].Picked
			}
			prefix[ci] = alt
			next = append(next, job{sc: j.sc, prefix: prefix})
		}
	}
	return next
}

// recordViolation minimises and records one violating run: the schedule
// shrinks by greedy event removal with the choice prefix pinned
// (chaos.ShrinkWith), then the prefix shrinks by greedy trailing
// truncation on the minimal schedule. Both phases share ShrinkBudget.
func (e *explorer) recordViolation(res *Result, sc chaos.Schedule, prefix []int, out *runOut) error {
	vr := ViolationRun{
		Schedule: sc,
		Prefix:   append([]int{}, prefix...),
		Result:   out.res,
	}
	shr, err := chaos.ShrinkWith(sc, out.res, e.cfg.ShrinkBudget, func(cand chaos.Schedule) (*chaos.RunResult, error) {
		o, err := e.execute(cand, prefix)
		if err != nil {
			return nil, err
		}
		return o.res, nil
	})
	if err != nil {
		return err
	}
	vr.ShrunkSchedule = shr.Schedule
	vr.Result = shr.Result
	vr.ShrinkRuns = shr.Runs

	minPrefix := append([]int{}, prefix...)
	for len(minPrefix) > 0 && vr.ShrinkRuns < e.cfg.ShrinkBudget {
		cand := minPrefix[:len(minPrefix)-1]
		o, err := e.execute(shr.Schedule, cand)
		if err != nil {
			return err
		}
		vr.ShrinkRuns++
		if !o.res.Failed() {
			break
		}
		minPrefix = cand
		vr.Result = o.res
	}
	vr.MinPrefix = minPrefix
	res.Violations = append(res.Violations, vr)
	return nil
}

// execute runs one (schedule, prefix) candidate on a fresh testbed with
// the forking wrapper injected, and returns the result plus the
// wrapper's recorded choices and boundaries. Trace detail is always on:
// independence pruning reads span components and violation reports
// render the timeline.
func (e *explorer) execute(sc chaos.Schedule, prefix []int) (*runOut, error) {
	var sched *Scheduler
	res, err := chaos.Run(sc, chaos.Options{
		Scheduler:   e.cfg.Scheduler,
		TraceDetail: true,
		CustomScheduler: func() sim.Scheduler {
			sched = NewScheduler(e.cfg.Scheduler, prefix)
			sched.ForkWindow(e.winLo, e.choiceHi)
			sched.RecordBoundaries(e.winLo, e.winHi)
			return sched
		},
	})
	if err != nil {
		return nil, err
	}
	// The wrapper doubles as a runtime checker of the inner queue's
	// (when, seq) total-order contract; a breach joins the run's
	// violations as the explorer-specific scheduler-order invariant.
	for _, msg := range sched.OrderViolations() {
		res.Violations = append(res.Violations, chaos.Violation{Invariant: "scheduler-order", Detail: msg})
	}
	return &runOut{res: res, choices: sched.Choices(), boundaries: sched.Boundaries()}, nil
}

// BaseSchedule is the fault-free single-connection schedule the
// exploration is anchored on.
func BaseSchedule(cfg Config) chaos.Schedule {
	cfg = cfg.withDefaults()
	return chaos.Schedule{
		Seed:     cfg.Seed,
		Workload: "echo",
		Rounds:   cfg.Rounds,
		MsgSize:  cfg.MsgSize,
		Horizon:  30 * time.Second,
		Events:   []chaos.Event{{At: 0, Kind: chaos.EvClientStart}},
	}
}

// batchSize is how many frontier entries one sweep batch executes: a few
// per worker keeps the pool busy without letting the in-flight set race
// far ahead of violation/budget cutoffs.
func batchSize(workers int) int {
	if workers <= 0 {
		workers = 8
	}
	return workers * 4
}

// stride evenly thins bounds down to max entries, keeping both
// endpoints. The cap is visible to callers via Result.Boundaries.
func stride(bounds []int64, max int) []int64 {
	if max <= 0 || len(bounds) <= max {
		return bounds
	}
	if max == 1 {
		return bounds[:1]
	}
	out := make([]int64, 0, max)
	for i := 0; i < max; i++ {
		b := bounds[i*(len(bounds)-1)/(max-1)]
		if len(out) == 0 || out[len(out)-1] != b {
			out = append(out, b)
		}
	}
	return out
}

// independent reports whether a tie group's members pairwise commute
// under the DPOR-style heuristic: every member carries a causal context,
// and the contexts' spans live on pairwise-distinct locations (the
// component's first path segment — the host, or a link/switch name).
// Same-instant events on disjoint locations cannot read or write the
// same simulated state, so their relative order cannot matter; any
// member without a context (or with an evicted span) disqualifies the
// group. This is an engineered approximation — Config.NoPrune re-checks
// a closure without it.
func independent(tr *trace.Recorder, ctxs []uint64) bool {
	if tr == nil {
		return false
	}
	locs := make([]string, 0, len(ctxs))
	for _, id := range ctxs {
		if id == 0 {
			return false
		}
		sp, ok := tr.SpanByID(trace.SpanID(id))
		if !ok {
			return false
		}
		loc := sp.Component
		if i := strings.IndexByte(loc, '/'); i >= 0 {
			loc = loc[:i]
		}
		for _, have := range locs {
			if have == loc {
				return false
			}
		}
		locs = append(locs, loc)
	}
	return true
}

// fingerprint hashes a run's observable outcome: the schedule signature,
// the full metrics snapshot, every client summary, violations, skips,
// and an order-insensitive digest of the in-window tie groups. Two runs
// with equal fingerprints behaved identically everywhere the system's
// observability can see, so the second one's alternatives are assumed
// covered by the first's — the dedup Config.NoDedup disables.
func fingerprint(sc chaos.Schedule, res *chaos.RunResult, inWin []Choice) uint64 {
	h := fnv.New64a()
	io.WriteString(h, sc.Signature())
	if res.Metrics != nil {
		io.WriteString(h, "\x00")
		io.WriteString(h, res.Metrics.String())
	}
	for _, c := range res.Clients {
		fmt.Fprintf(h, "\x00c:%s|%v|%s|%s", c.Name, c.Done, c.Err, c.Progress)
	}
	for _, v := range res.Violations {
		fmt.Fprintf(h, "\x00v:%s", v)
	}
	for _, s := range res.Skipped {
		fmt.Fprintf(h, "\x00s:%s", s)
	}
	var sum uint64
	for _, c := range inWin {
		g := fnv.New64a()
		fmt.Fprintf(g, "%d/%d", c.WhenNS, c.N)
		sum += g.Sum64()
	}
	fmt.Fprintf(h, "\x00m:%d", sum)
	return h.Sum64()
}

// Report renders the exploration outcome for humans: the counters, the
// closure verdict, and each violation's minimal reproduction with its
// timeline.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "explored %d interleavings across %d fault points (%d boundaries)\n",
		r.Interleavings, r.FaultPoints, len(r.Boundaries))
	fmt.Fprintf(&b, "choice points %d, pruned %d, deduped %d, truncated %d, frontier %d\n",
		r.ChoicePoints, r.Pruned, r.Deduped, r.Truncated, r.Frontier)
	if r.FullyClosed {
		b.WriteString("window FULLY CLOSED: every interleaving explored, all invariants held\n")
	} else if len(r.Violations) == 0 {
		b.WriteString("window NOT closed (budget or stop reached); no violations found\n")
	}
	for i := range r.Violations {
		v := &r.Violations[i]
		fmt.Fprintf(&b, "VIOLATION %d (shrunk in %d runs): prefix %v (from %v)\n",
			i+1, v.ShrinkRuns, v.MinPrefix, v.Prefix)
		b.WriteString(v.Result.Report())
	}
	return b.String()
}
