package explore

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/sim"
)

// smallWindow is a configuration whose interleaving space closes in
// about a second of wall clock: one connection, one crash kind, a 4 ms
// fault window, and a 10 ms forking grace.
func smallWindow(kind sim.SchedulerKind) Config {
	return Config{
		Seed:           7,
		Scheduler:      kind,
		FaultSpan:      4 * time.Millisecond,
		Grace:          10 * time.Millisecond,
		MaxFaultPoints: 2,
	}
}

// TestExploreClosesSmallWindow is the tentpole acceptance: a bounded
// 1-connection takeover window fully closes — the frontier drains with
// zero truncations — and every interleaving satisfies every invariant.
func TestExploreClosesSmallWindow(t *testing.T) {
	res, err := Explore(smallWindow(sim.SchedulerHeap))
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations in a correct system:\n%s", res.Report())
	}
	if !res.FullyClosed || res.Frontier != 0 || res.Truncated != 0 {
		t.Fatalf("window did not close: closed=%v frontier=%d truncated=%d",
			res.FullyClosed, res.Frontier, res.Truncated)
	}
	if res.Interleavings < 10 {
		t.Errorf("only %d interleavings explored; the tie axis is not being forked", res.Interleavings)
	}
	if res.FaultPoints != 2 || len(res.Boundaries) != 2 {
		t.Errorf("fault axis: %d points over boundaries %v, want 2 over 2", res.FaultPoints, res.Boundaries)
	}
	if res.Deduped == 0 {
		t.Errorf("dedup never fired across %d interleavings; closure should lean on it", res.Interleavings)
	}
}

// TestExploreDeterministic reruns the same exploration and demands the
// identical result — counters, boundaries, closure verdict, everything.
// Workers changes the replay parallelism and must not change any of it.
func TestExploreDeterministic(t *testing.T) {
	a, err := Explore(smallWindow(sim.SchedulerHeap))
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := Explore(smallWindow(sim.SchedulerHeap))
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	serial := smallWindow(sim.SchedulerHeap)
	serial.Workers = 1
	c, err := Explore(serial)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("identical configs diverged:\n%+v\n%+v", a, b)
	}
	if !reflect.DeepEqual(a, c) {
		t.Errorf("worker count changed the result:\n%+v\n%+v", a, c)
	}
}

// TestExploreStop verifies the wall-clock escape hatch: a Stop that trips
// immediately abandons the frontier and reports the window as not closed.
func TestExploreStop(t *testing.T) {
	cfg := smallWindow(sim.SchedulerHeap)
	cfg.Stop = func() bool { return true }
	res, err := Explore(cfg)
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if res.FullyClosed {
		t.Fatalf("stopped exploration still claimed closure: %+v", res)
	}
	if res.Frontier == 0 {
		t.Errorf("stopped exploration reports an empty frontier; the abandonment is invisible")
	}
}

// TestStride pins the boundary-thinning helper: endpoints survive, order
// is preserved, and the cap is exact.
func TestStride(t *testing.T) {
	cases := []struct {
		in   []int64
		max  int
		want []int64
	}{
		{nil, 4, nil},
		{[]int64{5}, 4, []int64{5}},
		{[]int64{1, 2, 3}, 4, []int64{1, 2, 3}},
		{[]int64{1, 2, 3, 4, 5, 6}, 2, []int64{1, 6}},
		{[]int64{1, 2, 3, 4, 5, 6, 7, 8, 9}, 3, []int64{1, 5, 9}},
	}
	for _, c := range cases {
		if got := stride(c.in, c.max); !reflect.DeepEqual(got, c.want) {
			t.Errorf("stride(%v, %d) = %v, want %v", c.in, c.max, got, c.want)
		}
	}
}
