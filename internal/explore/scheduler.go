// Package explore turns the chaos harness's sampled luck into
// proof-shaped coverage: within a bounded virtual-time window around a
// takeover it systematically enumerates (a) every same-timestamp
// tie-break order the event queue could legally choose and (b) every
// fault placement at the event boundaries inside the window, replays
// each interleaving through a sealed simulator, and judges every run
// with the full chaos invariant registry. Small configurations (one
// connection, one failover) close completely — the frontier of
// unexplored alternatives drains to zero — and any violating
// interleaving shrinks to a minimal schedule plus a minimal choice
// sequence, exactly like a chaos failure does.
//
// The exploration is stateless model checking in the VeriSoft style:
// a run is identified by its schedule and a choice prefix, and every
// candidate is re-executed from the start through the deterministic
// simulator, so no simulator state is ever snapshotted or restored.
// DPOR-style independence pruning (same-instant events on disjoint
// hosts commute) and order-insensitive run fingerprints keep the
// enumeration tractable; both are engineered approximations and both
// can be disabled to re-verify a closure claim the slow way.
package explore

import (
	"fmt"

	"repro/internal/sim"
)

// Choice records one tie-break decision the scheduler made: at virtual
// time WhenNS, N events were ready simultaneously and the one at index
// Picked (in (when, seq) order) fired first.
type Choice struct {
	// WhenNS is the tie group's virtual time, nanoseconds since sim.Epoch.
	WhenNS int64
	// N is the group size (always ≥ 2; one-event pops are not choices).
	N int
	// Picked is the chosen index within the group, in (when, seq) order.
	Picked int
	// Ctxs holds each group member's causal context (trace span ID, or
	// zero), in group order — the raw material for independence pruning.
	Ctxs []uint64
}

// Scheduler is a sim.Scheduler decorator that exposes same-timestamp
// tie-breaks as explicit choice points. It pops the entire group of
// events sharing the earliest virtual time from the inner queue, fires
// the member selected by the forced choice sequence (or the canonical
// (when, seq) order once the sequence is exhausted), and re-schedules
// the rest. Every multi-way group is recorded as a Choice, so a driver
// can enumerate the alternatives it did not take.
//
// With an empty choice sequence the pop order is byte-identical to the
// inner scheduler's — the differential test in internal/experiment
// holds it to that — so exploration results transfer directly to
// production runs. Permuting a tie group never reorders distinct
// timestamps, which keeps the simulator's clock monotonic.
type Scheduler struct {
	inner  sim.Scheduler
	forced []int

	used    int      // forced choices consumed
	choices []Choice // every multi-way tie, in pop order

	// next is the decided-but-unpopped head: RunUntil fires the event it
	// Peeked, so Peek must commit to the same answer Pop will give. The
	// decision is provisional until popped — scheduling an event at or
	// before next's time, or cancelling next, un-decides it (and rolls
	// back the recorded Choice) so the group can re-form.
	next          *sim.Event
	pendingChoice bool
	usedBefore    int

	// forkLo/forkHi bound the choice points (see ForkWindow); unset
	// means everywhere.
	forkLo, forkHi int64

	// boundary recording: distinct pop timestamps inside the window, for
	// the fault-placement axis.
	boundaryLo, boundaryHi int64
	boundaries             []int64

	// order auditing: the scheduler contract says pops never go backward
	// in time. The wrapper sees every pop, so it doubles as a runtime
	// checker of the inner queue — the seeded rewind-strand bug is caught
	// exactly here.
	lastWhen  int64
	orderErrs []string

	group []*sim.Event // gather scratch
}

// NewScheduler wraps a fresh inner queue of kind k. forced is the choice
// prefix: the i-th recorded multi-way tie group pops the member at index
// forced[i] (reduced modulo the group size, so any int sequence is a
// valid input — the fuzz target leans on that); groups beyond the
// prefix pop in canonical (when, seq) order.
func NewScheduler(k sim.SchedulerKind, forced []int) *Scheduler {
	return &Scheduler{inner: sim.NewScheduler(k), forced: forced}
}

// ForkWindow restricts choice recording (and forced-prefix consumption)
// to tie groups whose virtual time falls in [loNS, hiNS); groups outside
// pop canonically and consume nothing. Unset, every group is a choice
// point. Bounding the window keeps prefix indices aligned with the
// branching the driver actually explores — a prefix of length n always
// addresses the first n in-window groups. Must be set before the run.
func (x *Scheduler) ForkWindow(loNS, hiNS int64) {
	x.forkLo, x.forkHi = loNS, hiNS
}

// Choices returns the tie-break decisions recorded so far, in pop
// order. The slice is the scheduler's own; callers must not mutate it.
func (x *Scheduler) Choices() []Choice { return x.choices }

// RecordBoundaries makes the scheduler collect the distinct virtual
// times of pops inside [loNS, hiNS) — the event boundaries where the
// driver's fault axis places injections. Must be set before the run.
func (x *Scheduler) RecordBoundaries(loNS, hiNS int64) {
	x.boundaryLo, x.boundaryHi = loNS, hiNS
}

// Boundaries returns the distinct in-window pop timestamps observed, in
// increasing order.
func (x *Scheduler) Boundaries() []int64 { return x.boundaries }

// OrderViolations returns the scheduler-contract breaches observed: pops
// whose virtual time went backward. A correct inner queue never produces
// any; the explorer turns each into an invariant violation.
func (x *Scheduler) OrderViolations() []string { return x.orderErrs }

// Kind reports the inner queue's kind, so the wrapper is transparent to
// the cluster's scheduler-coherence check.
func (x *Scheduler) Kind() sim.SchedulerKind { return x.inner.Kind() }

// Len counts the inner queue plus the decided head, if any.
func (x *Scheduler) Len() int {
	n := x.inner.Len()
	if x.next != nil {
		n++
	}
	return n
}

// Schedule inserts e. If a decided head exists and e lands at or before
// its timestamp, the decision is rolled back first: the newcomer either
// precedes the head outright or joins its tie group, and in both cases
// the choice must be re-made over the full group.
func (x *Scheduler) Schedule(e *sim.Event) {
	if x.next != nil {
		when, _ := e.SchedKey()
		nextWhen, _ := x.next.SchedKey()
		if when <= nextWhen {
			x.undecide()
		}
	}
	x.inner.Schedule(e)
}

// Cancel removes e. Cancelling the decided head un-decides it (the
// surviving group members are already back in the inner queue, so the
// next Peek re-forms the group without the victim); anything else is
// the inner queue's tombstone business.
func (x *Scheduler) Cancel(e *sim.Event) {
	if e == x.next {
		x.next = nil
		x.rollbackChoice()
		return
	}
	x.inner.Cancel(e)
}

// Peek returns the event Pop will return, deciding the current tie
// group if needed.
func (x *Scheduler) Peek() *sim.Event { return x.decide() }

// Pop removes and returns the earliest event under the explored order.
func (x *Scheduler) Pop() *sim.Event {
	e := x.decide()
	if e != nil {
		when, _ := e.SchedKey()
		if when < x.lastWhen {
			x.orderErrs = append(x.orderErrs, fmt.Sprintf(
				"%s queue popped t=%dns after t=%dns: virtual time went backward",
				x.inner.Kind(), when, x.lastWhen))
		} else {
			x.lastWhen = when
		}
		if x.boundaryHi > x.boundaryLo && when >= x.boundaryLo && when < x.boundaryHi {
			if n := len(x.boundaries); n == 0 || x.boundaries[n-1] != when {
				x.boundaries = append(x.boundaries, when)
			}
		}
		x.next = nil
		x.pendingChoice = false // the decision is final once popped
	}
	return e
}

// undecide pushes the decided head back into the inner queue and rolls
// back its recorded Choice, so the tie group re-forms (possibly with a
// new member) at the next decide.
func (x *Scheduler) undecide() {
	x.inner.Schedule(x.next)
	x.next = nil
	x.rollbackChoice()
}

func (x *Scheduler) rollbackChoice() {
	if x.pendingChoice {
		x.choices = x.choices[:len(x.choices)-1]
		x.used = x.usedBefore
		x.pendingChoice = false
	}
}

// decide gathers the group of events sharing the earliest virtual time,
// applies the forced choice (or canonical order), records multi-way
// groups, re-schedules the rest, and caches the winner until it is
// popped or invalidated.
func (x *Scheduler) decide() *sim.Event {
	if x.next != nil {
		return x.next
	}
	first := x.inner.Pop()
	if first == nil {
		return nil
	}
	when, _ := first.SchedKey()
	x.group = append(x.group[:0], first)
	for {
		p := x.inner.Peek()
		if p == nil {
			break
		}
		if w, _ := p.SchedKey(); w != when {
			break
		}
		x.group = append(x.group, x.inner.Pop())
	}

	pick := 0
	x.usedBefore = x.used
	x.pendingChoice = false
	inFork := x.forkHi <= x.forkLo || (when >= x.forkLo && when < x.forkHi)
	if len(x.group) > 1 && inFork {
		if x.used < len(x.forced) {
			pick = x.forced[x.used] % len(x.group)
			if pick < 0 {
				pick += len(x.group)
			}
			x.used++
		}
		ch := Choice{WhenNS: when, N: len(x.group), Picked: pick, Ctxs: make([]uint64, len(x.group))}
		for i, e := range x.group {
			ch.Ctxs[i] = e.CausalContext()
		}
		x.choices = append(x.choices, ch)
		x.pendingChoice = true
	}

	chosen := x.group[pick]
	for i, e := range x.group {
		if i != pick {
			x.inner.Schedule(e)
		}
		x.group[i] = nil
	}
	x.group = x.group[:0]
	x.next = chosen
	return chosen
}
