// Package repro's top-level benchmarks regenerate every experiment of the
// paper "A System Demonstration of ST-TCP" (DSN 2005): the five planned
// demonstrations, the Table 1 failure matrix, the §3 serial-bandwidth
// budget, and two ablations (the tap-vs-heartbeat design change of §3 and
// the eager-takeover extension). Simulated quantities — failover time,
// detection time, overhead — are reported as custom benchmark metrics
// (suffixes like failover_ms); ns/op measures only how fast the simulator
// replays the scenario.
package repro_test

import (
	"testing"
	"time"

	"repro/internal/experiment"
	"repro/internal/hb"
	"repro/internal/ip"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// runDemo resolves a demonstration through the experiment registry and runs
// it, failing the benchmark on any error.
func runDemo(b *testing.B, name string, p experiment.Params) experiment.Result {
	b.Helper()
	d, ok := experiment.DemoByName(name)
	if !ok {
		b.Fatalf("demo %q is not registered", name)
	}
	res, err := d.Run(p)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkDemo1Failover regenerates Demo 1: the client-visible stall under
// ST-TCP versus the reconnect-based hot-backup baseline.
func BenchmarkDemo1Failover(b *testing.B) {
	for _, which := range []string{"sttcp", "baseline"} {
		b.Run(which, func(b *testing.B) {
			var stall, transfer time.Duration
			var reconnects int
			for i := 0; i < b.N; i++ {
				res := runDemo(b, "demo1", experiment.Params{
					Seed: int64(i + 1), Size: 16 << 20, CrashAfter: 500 * time.Millisecond,
				})
				r := res.Failovers[0]
				if which == "baseline" {
					r = *res.Baseline
				}
				if !r.Completed {
					b.Fatalf("transfer failed: %v", r.ClientErr)
				}
				stall += r.FailoverTime
				transfer += r.TransferTime
				reconnects += r.Reconnects
			}
			b.ReportMetric(float64(stall.Milliseconds())/float64(b.N), "stall_ms")
			b.ReportMetric(float64(transfer.Milliseconds())/float64(b.N), "transfer_ms")
			b.ReportMetric(float64(reconnects)/float64(b.N), "reconnects")
		})
	}
}

// BenchmarkDemo2FailoverVsHB regenerates Demo 2: failover time as a
// function of the heartbeat period (200 ms, 500 ms, 1 s).
func BenchmarkDemo2FailoverVsHB(b *testing.B) {
	for _, period := range []time.Duration{200 * time.Millisecond, 500 * time.Millisecond, time.Second} {
		b.Run("hb="+period.String(), func(b *testing.B) {
			var detect, failover time.Duration
			for i := 0; i < b.N; i++ {
				res := runDemo(b, "demo2", experiment.Params{
					Seed: int64(i + 1), Periods: []time.Duration{period},
				})
				r := res.Failovers[0]
				if !r.Completed {
					b.Fatalf("transfer failed: %v", r.ClientErr)
				}
				detect += r.DetectionTime
				failover += r.FailoverTime
			}
			b.ReportMetric(float64(detect.Milliseconds())/float64(b.N), "detect_ms")
			b.ReportMetric(float64(failover.Milliseconds())/float64(b.N), "failover_ms")
		})
	}
}

// BenchmarkDemo2UploadVsHB is the client-as-sender variant of Demo 2: the
// post-crash restart is driven by the client's retransmission backoff.
func BenchmarkDemo2UploadVsHB(b *testing.B) {
	for _, period := range []time.Duration{200 * time.Millisecond, time.Second} {
		b.Run("hb="+period.String(), func(b *testing.B) {
			var failover time.Duration
			for i := 0; i < b.N; i++ {
				res := runDemo(b, "demo2-upload", experiment.Params{
					Seed: int64(i + 1), Periods: []time.Duration{period},
				})
				r := res.Failovers[0]
				if !r.Completed {
					b.Fatalf("echo failed: %v", r.ClientErr)
				}
				failover += r.FailoverTime
			}
			b.ReportMetric(float64(failover.Milliseconds())/float64(b.N), "failover_ms")
		})
	}
}

// BenchmarkOutputCommitLogger regenerates the §4.3 output-commit scenario:
// the fraction of echo rounds completed without and with the logger.
func BenchmarkOutputCommitLogger(b *testing.B) {
	for _, mode := range []struct {
		name       string
		withLogger bool
	}{{"without-logger", false}, {"with-logger", true}} {
		b.Run(mode.name, func(b *testing.B) {
			rounds := 0
			completed := 0
			arm := 0
			if mode.withLogger {
				arm = 1
			}
			for i := 0; i < b.N; i++ {
				full := runDemo(b, "output-commit", experiment.Params{Seed: int64(i + 61)})
				res := full.OutputCommit[arm]
				rounds += res.RoundsDone
				if res.ClientDone {
					completed++
				}
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds")
			b.ReportMetric(float64(completed)/float64(b.N), "completed")
		})
	}
}

// BenchmarkDemo3Overhead regenerates Demo 3: failure-free transfer time
// with ST-TCP enabled vs disabled (the paper's ~100 MB file).
func BenchmarkDemo3Overhead(b *testing.B) {
	const size = 64 << 20 // large enough for a stable ratio, kept moderate for bench time
	var overhead float64
	var with, without time.Duration
	for i := 0; i < b.N; i++ {
		res := runDemo(b, "demo3", experiment.Params{Seed: int64(i + 1), Size: size})
		overhead += res.Overhead.OverheadPct
		with += res.Overhead.WithSTTCP
		without += res.Overhead.WithoutTCP
	}
	b.ReportMetric(overhead/float64(b.N), "overhead_pct")
	b.ReportMetric(float64(with.Milliseconds())/float64(b.N), "with_ms")
	b.ReportMetric(float64(without.Milliseconds())/float64(b.N), "without_ms")
}

// BenchmarkDemo4AppCrash regenerates Demo 4: both application-crash
// scenarios (no cleanup / OS cleanup with FIN).
func BenchmarkDemo4AppCrash(b *testing.B) {
	for _, mode := range []experiment.AppCrashMode{experiment.CrashNoCleanup, experiment.CrashWithCleanup} {
		b.Run(mode.String(), func(b *testing.B) {
			var detect, failover time.Duration
			for i := 0; i < b.N; i++ {
				res := runDemo(b, "demo4", experiment.Params{Seed: int64(i + 1), Mode: mode})
				r := res.Failovers[0]
				if !r.Completed {
					b.Fatalf("transfer failed: %v", r.ClientErr)
				}
				detect += r.DetectionTime
				failover += r.FailoverTime
			}
			b.ReportMetric(float64(detect.Milliseconds())/float64(b.N), "detect_ms")
			b.ReportMetric(float64(failover.Milliseconds())/float64(b.N), "failover_ms")
		})
	}
}

// BenchmarkDemo5NICFailure regenerates Demo 5: NIC failure at the primary
// (part one) and at the backup (part two).
func BenchmarkDemo5NICFailure(b *testing.B) {
	for _, part := range []struct {
		name    string
		primary bool
	}{{"primary", true}, {"backup", false}} {
		b.Run(part.name, func(b *testing.B) {
			var detect time.Duration
			for i := 0; i < b.N; i++ {
				res := runDemo(b, "demo5", experiment.Params{Seed: int64(i + 1)})
				for _, r := range res.NIC {
					if r.FailedAtPrimary != part.primary {
						continue
					}
					if !r.ClientOK {
						b.Fatalf("client failed: %v", r.ClientErr)
					}
					detect += r.DetectionTime
				}
			}
			b.ReportMetric(float64(detect.Milliseconds())/float64(b.N), "detect_ms")
		})
	}
}

// BenchmarkTable1Scenarios regenerates the full Table 1 failure matrix.
func BenchmarkTable1Scenarios(b *testing.B) {
	for _, sc := range experiment.Scenarios {
		sc := sc
		b.Run(sc.String(), func(b *testing.B) {
			var detect time.Duration
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunScenario(int64(i+1), sc)
				if err != nil {
					b.Fatal(err)
				}
				if !res.ClientOK {
					b.Fatalf("client failed: %v", res.ClientErr)
				}
				detect += res.DetectionTime
			}
			b.ReportMetric(float64(detect.Milliseconds())/float64(b.N), "detect_ms")
		})
	}
}

// BenchmarkHeartbeatSerialCapacity regenerates the §3 bandwidth budget:
// heartbeat state for N connections over the 115.2 kbit/s serial line at a
// 200 ms period, reporting queueing delay and saturation.
func BenchmarkHeartbeatSerialCapacity(b *testing.B) {
	for _, conns := range []int{1, 25, 50, 100, 150, 250} {
		conns := conns
		b.Run(benchName("conns", conns), func(b *testing.B) {
			var queue time.Duration
			saturated := 0
			for i := 0; i < b.N; i++ {
				full := runDemo(b, "capacity", experiment.Params{ConnCounts: []int{conns}})
				res := full.Capacity[0]
				queue += res.MaxQueueDelay
				if res.Saturated {
					saturated++
				}
			}
			b.ReportMetric(float64(queue.Milliseconds())/float64(b.N), "max_queue_ms")
			b.ReportMetric(float64(saturated)/float64(b.N), "saturated")
		})
	}
}

// BenchmarkAblationTapVsHB regenerates the §3 design change: backup NIC
// receive volume with the enhanced heartbeat state exchange versus the old
// design that tapped primary→client traffic. The registry demo runs both
// arms in one shot, so one benchmark reports both volumes.
func BenchmarkAblationTapVsHB(b *testing.B) {
	var enhanced, tap int64
	for i := 0; i < b.N; i++ {
		res := runDemo(b, "nicload", experiment.Params{Seed: int64(i + 1)})
		enhanced += res.NICLoad[0].BackupRxBytes
		tap += res.NICLoad[1].BackupRxBytes
	}
	b.ReportMetric(float64(enhanced)/float64(b.N)/1024, "enhanced_rx_KB")
	b.ReportMetric(float64(tap)/float64(b.N)/1024, "tap_rx_KB")
}

// BenchmarkAblationEagerTakeover compares the paper's
// wait-for-retransmission takeover with the eager-retransmit extension at
// a 1 s heartbeat period, where the residual backoff matters most.
func BenchmarkAblationEagerTakeover(b *testing.B) {
	for _, mode := range []struct {
		name  string
		eager bool
	}{{"faithful", false}, {"eager", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var failover time.Duration
			for i := 0; i < b.N; i++ {
				res := runDemo(b, "demo2", experiment.Params{
					Seed: int64(i + 1), Periods: []time.Duration{time.Second}, Eager: mode.eager,
				})
				failover += res.Failovers[0].FailoverTime
			}
			b.ReportMetric(float64(failover.Milliseconds())/float64(b.N), "failover_ms")
		})
	}
}

// BenchmarkWitnessMajority measures the §4.2.2 majority extension: time to
// resolve a primary-side FIN conflict (application crash with cleanup on an
// echo workload) with and without the witness replica. The registry demo
// runs both arms in one shot, so one benchmark reports both times.
func BenchmarkWitnessMajority(b *testing.B) {
	var pairwise, witness time.Duration
	for i := 0; i < b.N; i++ {
		res := runDemo(b, "witness", experiment.Params{Seed: int64(i + 101)})
		pairwise += res.Witness[0].Resolution
		witness += res.Witness[1].Resolution
	}
	b.ReportMetric(float64(pairwise.Milliseconds())/float64(b.N), "pairwise_ms")
	b.ReportMetric(float64(witness.Milliseconds())/float64(b.N), "witness_ms")
}

// BenchmarkScaleFailover pushes hundreds of concurrent connections through
// a primary crash. Simulated quantities (detection, worst per-client stall)
// ride along as metrics; segments/s measures how fast the simulator chews
// through the scenario's segment load in wall-clock terms.
func BenchmarkScaleFailover(b *testing.B) {
	for _, conns := range []int{250, 1000} {
		conns := conns
		b.Run(benchName("conns", conns), func(b *testing.B) {
			var segs, stall, detect int64
			for i := 0; i < b.N; i++ {
				res := runDemo(b, "scale", experiment.Params{
					Seed: int64(i + 1), Conns: conns, Size: 16 << 10,
				})
				segs += res.Scale.SegmentsEmitted
				stall += int64(res.Scale.MaxStall)
				detect += int64(res.Scale.DetectionTime)
			}
			b.ReportMetric(float64(segs)/b.Elapsed().Seconds(), "segments/s")
			b.ReportMetric(float64(time.Duration(stall/int64(b.N)).Milliseconds()), "max_stall_ms")
			b.ReportMetric(float64(time.Duration(detect/int64(b.N)).Milliseconds()), "detect_ms")
		})
	}
}

// BenchmarkSchedulerKinds runs the same scale failover under each event-
// queue implementation, so `go test -bench SchedulerKinds` prints the
// heap/calendar segments-per-second contrast directly. The simulated
// quantities are byte-identical across sub-benchmarks — only the wall
// rate moves (see DESIGN.md "Scheduler architecture").
func BenchmarkSchedulerKinds(b *testing.B) {
	for _, kind := range []sim.SchedulerKind{sim.SchedulerHeap, sim.SchedulerCalendar} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			var segs int64
			for i := 0; i < b.N; i++ {
				res := runDemo(b, "scale", experiment.Params{
					Seed: int64(i + 1), Conns: 500, Size: 16 << 10, Scheduler: kind,
				})
				segs += res.Scale.SegmentsEmitted
			}
			b.ReportMetric(float64(segs)/b.Elapsed().Seconds(), "segments/s")
		})
	}
}

// BenchmarkSegmentThroughput is the bench suite's headline rate: one bulk
// transfer with no faults, reported as simulated TCP segments processed
// per wall-clock second.
func BenchmarkSegmentThroughput(b *testing.B) {
	var segs int64
	for i := 0; i < b.N; i++ {
		res := runDemo(b, "demo3", experiment.Params{Seed: int64(i + 1), Size: 32 << 20})
		segs += res.Overhead.Metrics.CounterTotal("tcp.segments_sent")
	}
	b.SetBytes(32 << 20)
	b.ReportMetric(float64(segs)/b.Elapsed().Seconds(), "segments/s")
}

// --- Microbenchmarks of the hot paths ---

func BenchmarkSegmentEncodeDecode(b *testing.B) {
	src, dst := ip.MakeAddr(10, 0, 0, 1), ip.MakeAddr(10, 0, 0, 100)
	payload := make([]byte, tcp.DefaultMSS)
	seg := tcp.Segment{SrcPort: 50000, DstPort: 80, Seq: 1, Ack: 2, Flags: tcp.FlagACK, Window: 65535, Payload: payload}
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw := seg.Encode(src, dst)
		if _, err := tcp.Decode(src, dst, raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeartbeatEncodeDecode(b *testing.B) {
	m := hb.Message{Role: hb.RolePrimary}
	for i := 0; i < 100; i++ {
		m.Conns = append(m.Conns, hb.ConnState{RemotePort: uint16(i), LocalPort: 80})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw, err := m.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := hb.Decode(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChecksum(b *testing.B) {
	data := make([]byte, 1460)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		_ = ip.Checksum(data)
	}
}

func benchName(prefix string, n int) string {
	const digits = "0123456789"
	if n == 0 {
		return prefix + "=0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = digits[n%10]
		n /= 10
	}
	return prefix + "=" + string(buf[i:])
}
