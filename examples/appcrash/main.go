// Appcrash: the paper's Demo 4 as a standalone program — tolerate a server
// *application* crash while the machine, OS, and TCP stack stay healthy.
//
// Two scenarios are exercised (paper §4.2):
//
//   - no cleanup: the process wedges; the socket stays open, no FIN ever
//     appears. The backup notices the primary's application has stopped
//     reading/writing — the LastAppByteRead/Written positions carried in
//     every heartbeat stall while its own advance — and takes over.
//
//   - with cleanup: the OS reaps the process and closes the socket,
//     generating a FIN. Sending that FIN would kill the client's
//     connection even though a healthy replica exists, so ST-TCP gates it
//     (MaxDelayFIN) while the lag detector gathers evidence, then fails
//     over and the backup serves the rest of the transfer.
//
//     go run ./examples/appcrash
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/experiment"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "appcrash:", err)
		os.Exit(1)
	}
}

func run() error {
	demo, ok := experiment.DemoByName("demo4")
	if !ok {
		return fmt.Errorf("demo4 is not registered")
	}
	for _, mode := range []experiment.AppCrashMode{experiment.CrashNoCleanup, experiment.CrashWithCleanup} {
		out, err := demo.Run(experiment.Params{Seed: 21, Mode: mode})
		if err != nil {
			return err
		}
		res := out.Failovers[0]
		fmt.Printf("=== application crash, %v ===\n", mode)
		fmt.Printf("detection:  %v after the crash\n", res.DetectionTime.Round(time.Millisecond))
		fmt.Printf("stall seen by client: %v\n", res.FailoverTime.Round(time.Millisecond))
		fmt.Printf("transfer completed: %v (%d bytes, %d verification failures)\n",
			res.Completed, res.BytesReceived, res.VerifyFailures)
		fmt.Println("\nkey events:")
		for _, e := range res.Tracer.Events() {
			switch e.Kind {
			case trace.KindAppCrash, trace.KindFINDelayed, trace.KindSuspect,
				trace.KindShutdownPeer, trace.KindTakeover, trace.KindFINReleased:
				fmt.Printf("  %v\n", e)
			}
		}
		fmt.Println()
		if !res.Completed {
			return fmt.Errorf("mode %v: client did not complete: %w", mode, res.ClientErr)
		}
	}
	return nil
}
