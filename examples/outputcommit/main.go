// Outputcommit: the one failure ST-TCP alone cannot mask — and the logger
// that fixes it (paper §4.3).
//
// The primary acknowledges client bytes as soon as its TCP receives them.
// If the backup missed those bytes (a transient fault on its link) it
// normally re-fetches them from the primary's hold buffer. But if the
// primary crashes first, the bytes are gone: the client will never
// retransmit data that was acknowledged. The paper deems this
// unrecoverable — unless a logger machine also taps the client stream.
//
// This example constructs that exact race twice: without a logger the echo
// session wedges right after takeover; with the logger the backup replays
// the missing bytes from the log and the session completes.
//
//	go run ./examples/outputcommit
package main

import (
	"fmt"
	"os"

	"repro/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "outputcommit:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("scenario: 300ms fault on the backup's link; primary crashes 250ms into it,")
	fmt.Println("after acknowledging client bytes the backup never received.")
	fmt.Println()
	demo, ok := experiment.DemoByName("output-commit")
	if !ok {
		return fmt.Errorf("output-commit demo is not registered")
	}
	ocRes, err := demo.Run(experiment.Params{Seed: 61})
	if err != nil {
		return err
	}
	for _, res := range ocRes.OutputCommit {
		name := "without logger"
		if res.WithLogger {
			name = "with logger   "
		}
		status := fmt.Sprintf("WEDGED after %d/800 echo rounds (unrecoverable, as §4.3 states)", res.RoundsDone)
		if res.ClientDone {
			status = fmt.Sprintf("completed all %d echo rounds (logger served %d recovery datagrams)",
				res.RoundsDone, res.LoggerServed)
		}
		fmt.Printf("%s  takeover=%v  →  %s\n", name, res.TookOver, status)
	}
	fmt.Println("\nthe logger is passive: it joins the same multicast Ethernet group as the")
	fmt.Println("servers, reassembles each connection's client byte stream, and answers the")
	fmt.Println("same recovery protocol the primary's hold buffer serves.")
	return nil
}
