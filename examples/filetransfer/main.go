// Filetransfer: the paper's Demo 3 as a standalone program — measure what
// ST-TCP replication costs when nothing fails.
//
// A large file is served twice over the identical simulated network: once
// through the full ST-TCP pair (active backup tapping the client stream,
// dual-link heartbeats, hold buffer) and once by a plain TCP server. The
// difference is the protocol's failure-free overhead; the paper's claim —
// reproduced here — is that it is insignificant.
//
//	go run ./examples/filetransfer [-size-mib 100]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiment"
)

func main() {
	sizeMiB := flag.Int64("size-mib", 100, "transfer size in MiB")
	flag.Parse()
	if err := run(*sizeMiB << 20); err != nil {
		fmt.Fprintln(os.Stderr, "filetransfer:", err)
		os.Exit(1)
	}
}

func run(size int64) error {
	fmt.Printf("transferring %d MiB over simulated 100 Mbit/s switched Ethernet...\n\n", size>>20)
	demo, ok := experiment.DemoByName("demo3")
	if !ok {
		return fmt.Errorf("demo3 is not registered")
	}
	out, err := demo.Run(experiment.Params{Seed: 7, Size: size})
	if err != nil {
		return err
	}
	res := out.Overhead
	rate := func(d time.Duration) float64 {
		return float64(size) * 8 / d.Seconds() / 1e6
	}
	fmt.Printf("%-22s %12v   %6.1f Mbit/s\n", "ST-TCP enabled:", res.WithSTTCP.Round(time.Millisecond), rate(res.WithSTTCP))
	fmt.Printf("%-22s %12v   %6.1f Mbit/s\n", "ST-TCP disabled:", res.WithoutTCP.Round(time.Millisecond), rate(res.WithoutTCP))
	fmt.Printf("%-22s %11.3f%%\n", "overhead:", res.OverheadPct)
	fmt.Println("\nwhy so small: the backup receives the client→server stream through the")
	fmt.Println("switch's multicast group (no extra work for the primary), suppresses all of")
	fmt.Println("its own output, and the heartbeat adds ~33 bytes per connection per 200 ms.")
	return nil
}
