// Lifecycle: beyond the paper's single failover — crash, repair, rejoin,
// and survive the next crash, indefinitely.
//
// The paper's demonstrations end when the backup takes over; a production
// deployment then has a single point of failure until the dead machine is
// replaced. This example runs three full generations on one testbed:
//
//	crash the primary  →  transparent takeover (a transfer survives it)
//	reboot the machine →  it rejoins as the new backup of the survivor
//	repeat, with the machines alternating roles
//
// The service address never changes and every transfer's bytes verify.
//
//	go run ./examples/lifecycle
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/app"
	"repro/internal/experiment"
	"repro/internal/tcp"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lifecycle:", err)
		os.Exit(1)
	}
}

func run() error {
	tb := experiment.Build(experiment.Options{Seed: 7})
	if err := tb.StartSTTCP(0, nil); err != nil {
		return err
	}
	mkApp := func(name string) func(*tcp.Conn) {
		return app.NewDataServer(name, tb.Tracer).Accept
	}
	tb.PrimaryNode.OnAccept = mkApp("primary/app")
	tb.BackupNode.OnAccept = mkApp("backup/app")

	lc := experiment.NewLifecycle(tb)
	for gen := 1; gen <= 3; gen++ {
		primary := lc.PrimaryHost().Name()
		cl := app.NewStreamClient(app.ClientConfig{
			Name: "client/app", Stack: tb.Client.TCP(),
			Service: experiment.ServiceAddr, Port: experiment.ServicePort,
			Request: 4 << 20, Tracer: tb.Tracer,
		})
		if err := cl.Start(); err != nil {
			return err
		}
		tb.Sim.Schedule(200*time.Millisecond, lc.CrashPrimary)
		if err := tb.Run(10 * time.Second); err != nil {
			return err
		}
		gap, _ := cl.MaxGap()
		fmt.Printf("generation %d: crashed %-8s → transfer survived (%d bytes verified, %v stall)\n",
			gen, primary, cl.Received, gap.Round(time.Millisecond))
		if cl.Err != nil {
			return fmt.Errorf("generation %d transfer failed: %w", gen, cl.Err)
		}
		if err := lc.Reintegrate(mkApp); err != nil {
			return err
		}
		if err := tb.Run(time.Second); err != nil {
			return err
		}
		fmt.Printf("              rebooted %-8s → rejoined as backup; pair active again\n", primary)
	}
	fmt.Printf("\n%d takeovers, %d reintegrations, service address unchanged throughout.\n",
		tb.Tracer.Count(trace.KindTakeover), lc.Generations)
	return nil
}
