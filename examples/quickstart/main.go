// Quickstart: the smallest end-to-end ST-TCP run.
//
// It builds the paper's Figure 2 testbed (client, switch, primary, backup,
// gateway, serial cable), starts the replicated service, downloads 8 MiB,
// and crashes the primary mid-transfer. The download completes anyway —
// the backup takes over the same TCP connection (same IP, port, sequence
// numbers) and the client never notices beyond a sub-second stall.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/app"
	"repro/internal/experiment"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Build the testbed and start the ST-TCP pair.
	tb := experiment.Build(experiment.Options{Seed: 1})
	if err := tb.StartSTTCP(0 /* default 200 ms heartbeat */, nil); err != nil {
		return err
	}

	// 2. Run the same deterministic server application on both nodes.
	//    ST-TCP requires the replica to produce the same bytes from the
	//    same input; it sees the identical client stream via the
	//    multicast Ethernet group.
	primaryApp := app.NewDataServer("primary/app", tb.Tracer)
	backupApp := app.NewDataServer("backup/app", tb.Tracer)
	tb.PrimaryNode.OnAccept = primaryApp.Accept
	tb.BackupNode.OnAccept = backupApp.Accept

	// 3. A client downloads 8 MiB from the service address.
	const size = 8 << 20
	client := app.NewStreamClient(app.ClientConfig{
		Name: "client/app", Stack: tb.Client.TCP(),
		Service: experiment.ServiceAddr, Port: experiment.ServicePort,
		Request: size, Tracer: tb.Tracer,
	})
	if err := client.Start(); err != nil {
		return err
	}

	// 4. Crash the primary 300 ms in.
	tb.Sim.Schedule(300*time.Millisecond, tb.Primary.CrashHW)

	// 5. Let the simulation play out.
	if err := tb.Run(2 * time.Minute); err != nil {
		return err
	}

	// 6. What happened?
	fmt.Printf("downloaded:     %d/%d bytes (verify failures: %d)\n",
		client.Received, int64(size), client.VerifyFailures)
	fmt.Printf("transfer time:  %v\n", client.Elapsed().Round(time.Millisecond))
	gap, _ := client.MaxGap()
	fmt.Printf("client stall:   %v (the failover, as the user saw it)\n", gap.Round(time.Millisecond))
	fmt.Printf("backup state:   %v\n", tb.BackupNode.State())
	if e, ok := tb.Tracer.First(trace.KindTakeover); ok {
		fmt.Printf("takeover:       %s\n", e.Message)
	}
	if client.Err != nil {
		return client.Err
	}
	fmt.Println("\nthe TCP connection survived a server crash — the client never reconnected.")
	return nil
}
