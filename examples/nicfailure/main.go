// Nicfailure: the paper's Demo 5 as a standalone program — diagnose which
// server lost its network interface.
//
// When a NIC dies, the heartbeat on the IP link goes silent in both
// directions, which looks identical from both machines; acting on it
// blindly risks shooting the healthy server. ST-TCP disambiguates using
// the second, diverse heartbeat link (the RS-232 null-modem cable, §4.3):
//
//   - client-data evidence: the server whose LastByteReceived /
//     LastAckReceived positions (exchanged over the serial heartbeat) fall
//     behind is the one that stopped hearing the client;
//
//   - gateway pings: both servers ping the gateway and exchange the
//     results over the serial line; the one whose pings fail while the
//     peer's succeed has the dead NIC.
//
// The healthy side then acts: the backup takes over, or the primary drops
// to non-fault-tolerant mode — and in both cases the client's echo session
// continues, unaware.
//
//	go run ./examples/nicfailure
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/experiment"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nicfailure:", err)
		os.Exit(1)
	}
}

func run() error {
	demo, ok := experiment.DemoByName("demo5")
	if !ok {
		return fmt.Errorf("demo5 is not registered")
	}
	out, err := demo.Run(experiment.Params{Seed: 31})
	if err != nil {
		return err
	}
	for _, res := range out.NIC {
		where := "backup"
		if res.FailedAtPrimary {
			where = "primary"
		}
		fmt.Printf("=== NIC failure at the %s ===\n", where)
		fmt.Printf("diagnosed in %v; backup took over: %v; primary non-FT: %v; client unaffected: %v\n",
			res.DetectionTime.Round(time.Millisecond), res.TookOver, res.NonFT, res.ClientOK)
		fmt.Println("\nkey events:")
		shown := 0
		for _, e := range res.Tracer.Events() {
			switch e.Kind {
			case trace.KindNICFail, trace.KindHBLinkDown, trace.KindSuspect,
				trace.KindShutdownPeer, trace.KindTakeover, trace.KindNonFTMode:
				fmt.Printf("  %v\n", e)
				shown++
			}
			if shown > 12 {
				break
			}
		}
		fmt.Println()
		if !res.ClientOK {
			return fmt.Errorf("client disturbed: %w", res.ClientErr)
		}
	}
	return nil
}
